"""Serving telemetry: log-bucket histograms, drift watchdog, server wiring.

The acceptance path for PR 8's tentpole: per-request latency/queue-wait
series recorded by :class:`~repro.serving.server.ModelServer`, phase
timings and the query-drift watchdog recorded by
:class:`~repro.serving.model.GraphSSLModel`, error-path ticket
resolution, and the ``serving.*`` metric surface the SLO gate and the
``obs top`` dashboard read.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.exceptions import ConfigurationError
from repro.obs.metrics import LogBucketHistogram, MetricsRegistry
from repro.obs.probes import record_serving_stats
from repro.obs.serving_telemetry import (
    DriftWatchdog,
    ServingTelemetry,
    fit_drift_baseline,
)
from repro.serving import GraphSSLModel, ModelServer
from repro.datasets.synthetic import make_regression_dataset, truncated_mvn_inputs


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(11)
    data = make_regression_dataset(30, 90, seed=rng)
    model = GraphSSLModel(graph="full")
    model.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)
    queries = truncated_mvn_inputs(24, seed=rng)
    return model, queries


class TestLogBucketHistogram:
    def test_quantiles_within_relative_error(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=-6.0, sigma=1.5, size=20_000)
        hist = LogBucketHistogram("lat")
        hist.observe_many(values)
        for q in (0.5, 0.9, 0.95, 0.99):
            exact = float(np.quantile(values, q))
            approx = hist.quantile(q)
            assert abs(approx - exact) <= hist.relative_error * exact * 1.5

    def test_observe_and_observe_many_agree(self):
        values = [0.001, 0.01, 0.1, 1.0, 0.0, -3.0]
        one = LogBucketHistogram("a")
        many = LogBucketHistogram("b")
        for v in values:
            one.observe(v)
        many.observe_many(np.asarray(values))
        assert one.buckets == many.buckets
        assert one.zero_count == many.zero_count == 2
        assert one.count == many.count == 6

    def test_merge_is_exact(self):
        rng = np.random.default_rng(1)
        left, right = LogBucketHistogram("x"), LogBucketHistogram("x")
        a, b = rng.exponential(size=500), rng.exponential(size=300)
        left.observe_many(a)
        right.observe_many(b)
        both = LogBucketHistogram("x")
        both.observe_many(np.concatenate([a, b]))
        left.merge_state(right.to_state())
        assert left.count == both.count
        assert left.buckets == both.buckets
        assert left.total == pytest.approx(both.total)
        assert left.min == pytest.approx(both.min)
        assert left.max == pytest.approx(both.max)

    def test_merge_rejects_mismatched_resolution(self):
        coarse = LogBucketHistogram("x", relative_error=0.1)
        fine = LogBucketHistogram("x", relative_error=0.01)
        with pytest.raises(ValueError, match="relative_error"):
            coarse.merge_state(fine.to_state())

    def test_registry_round_trip(self):
        registry = MetricsRegistry()
        registry.log_histogram("serving.lat").observe_many(
            np.random.default_rng(2).exponential(size=100)
        )
        other = MetricsRegistry()
        other.merge_state(registry.to_state())
        assert other.snapshot()["serving.lat"] == registry.snapshot()["serving.lat"]

    def test_snapshot_quantile_keys(self):
        hist = LogBucketHistogram("h")
        hist.observe_many(np.linspace(0.001, 1.0, 200))
        snap = hist.snapshot()
        for key in ("count", "p50", "p90", "p95", "p99", "relative_error"):
            assert key in snap
        assert snap["p50"] <= snap["p95"] <= snap["p99"]

    def test_invalid_relative_error(self):
        with pytest.raises(ValueError):
            LogBucketHistogram("h", relative_error=0.0)
        with pytest.raises(ValueError):
            LogBucketHistogram("h", relative_error=1.0)


class TestDriftWatchdog:
    def test_in_band_degrees_mostly_unflagged(self):
        rng = np.random.default_rng(3)
        fit_degrees = rng.normal(10.0, 1.0, size=2_000)
        baseline = fit_drift_baseline(fit_degrees)
        watchdog = DriftWatchdog(baseline)
        with obs.use_registry(MetricsRegistry()):
            watchdog.observe(rng.normal(10.0, 1.0, size=500))
        # the band keeps ~95% of same-distribution mass by construction
        assert watchdog.flag_fraction < 0.15

    def test_shifted_density_batch_flagged(self):
        """The acceptance criterion: a held-out shifted-density batch."""
        rng = np.random.default_rng(4)
        baseline = fit_drift_baseline(rng.normal(10.0, 1.0, size=2_000))
        watchdog = DriftWatchdog(baseline)
        registry = MetricsRegistry()
        with obs.use_registry(registry):
            n = watchdog.observe(rng.normal(4.0, 1.0, size=200))
        assert n > 100
        assert watchdog.flag_fraction > 0.5
        snap = registry.snapshot()
        assert snap["serving.drift.flagged"]["value"] == n
        assert snap["serving.drift.observed"]["value"] == 200
        assert snap["serving.drift.degree_low"]["value"] > 100
        assert snap["serving.drift.flag_fraction"]["value"] == pytest.approx(
            watchdog.flag_fraction
        )

    def test_nystrom_margin_erosion_flags(self):
        baseline = fit_drift_baseline(np.linspace(5.0, 15.0, 1_000))
        watchdog = DriftWatchdog(baseline)
        registry = MetricsRegistry()
        with obs.use_registry(registry):
            # in-band degrees, but below the 2*mu_max stability floor
            n = watchdog.observe(np.full(10, 9.0), mu_max=6.0)
        assert n == 10
        snap = registry.snapshot()
        assert snap["serving.drift.nystrom_margin_min"]["value"] < 0

    def test_empty_degrees_rejected(self):
        with pytest.raises(ValueError):
            fit_drift_baseline(np.array([]))


class TestServingTelemetryRecorder:
    def test_records_request_series(self):
        registry = MetricsRegistry()
        telemetry = ServingTelemetry(registry=registry)
        telemetry.record_requests(
            "nw",
            3,
            latencies_s=np.array([0.001, 0.002, 0.004]),
            queue_waits_s=np.array([0.0005, 0.0006, 0.0007]),
        )
        telemetry.record_errors("nw", 2)
        telemetry.record_phase("extract", 0.01)
        telemetry.record_flush("full")
        telemetry.record_throughput(1234.5)
        snap = registry.snapshot()
        assert snap["serving.request.count.nw"]["value"] == 5
        assert snap["serving.request.outcome.ok"]["value"] == 3
        assert snap["serving.request.outcome.error"]["value"] == 2
        assert snap["serving.request.latency_s"]["count"] == 3
        assert snap["serving.request.queue_wait_s"]["count"] == 3
        assert snap["serving.phase.extract_s"]["count"] == 1
        assert snap["serving.server.flush.full"]["value"] == 1
        assert snap["serving.request.throughput_qps"]["value"] == 1234.5

    def test_disabled_recorder_is_silent(self):
        registry = MetricsRegistry()
        telemetry = ServingTelemetry(enabled=False, registry=registry)
        telemetry.record_requests("nw", 3, latencies_s=np.array([0.001]))
        telemetry.record_errors("nw", 1)
        telemetry.record_phase("extract", 0.01)
        telemetry.record_flush("manual")
        telemetry.record_throughput(10.0)
        assert registry.snapshot() == {}


class TestModelPhasesAndDrift:
    def test_fit_builds_drift_baseline(self, fitted):
        model, _ = fitted
        assert model.drift_baseline_ is not None
        assert model.drift_watchdog_ is not None
        assert model.drift_baseline_.degree_lo < model.drift_baseline_.degree_hi

    def test_predict_batch_records_phases_and_drift(self, fitted):
        model, queries = fitted
        registry = MetricsRegistry()
        with obs.use_registry(registry):
            model.predict_batch(queries, method="nw")
        snap = registry.snapshot()
        assert snap["serving.phase.extract_s"]["count"] >= 1
        assert snap["serving.phase.predict_s"]["count"] >= 1
        assert snap["serving.drift.observed"]["value"] == len(queries)

    def test_interval_phase_recorded(self, fitted):
        model, queries = fitted
        registry = MetricsRegistry()
        with obs.use_registry(registry):
            model.predict(queries[:4], method="nw", return_interval=True)
        assert registry.snapshot()["serving.phase.interval_s"]["count"] >= 1

    def test_shifted_queries_flag_drift_through_model(self, fitted):
        """End-to-end: off-distribution queries raise the flag fraction."""
        model, queries = fitted
        registry = MetricsRegistry()
        with obs.use_registry(registry):
            model.predict_batch(queries + 8.0, method="nw")
        snap = registry.snapshot()
        # per-batch fraction from the fresh registry's counters — the
        # module-scoped model's watchdog accumulates across tests, so its
        # lifetime flag_fraction is not what this batch alone produced
        flagged = snap["serving.drift.flagged"]["value"]
        observed = snap["serving.drift.observed"]["value"]
        assert observed == len(queries)
        assert flagged / observed > 0.5

    def test_telemetry_off_records_no_phases(self, fitted):
        _, queries = fitted
        rng = np.random.default_rng(12)
        data = make_regression_dataset(20, 60, seed=rng)
        model = GraphSSLModel(graph="full", telemetry=False)
        model.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)
        registry = MetricsRegistry()
        with obs.use_registry(registry):
            model.predict_batch(queries, method="nw")
        snap = registry.snapshot()
        assert not any(name.startswith("serving.phase.") for name in snap)
        assert not any(name.startswith("serving.drift.") for name in snap)


class TestModelServerTelemetry:
    def test_request_latency_and_queue_wait(self, fitted):
        model, queries = fitted
        registry = MetricsRegistry()
        server = ModelServer(model, max_batch_size=8)
        with obs.use_registry(registry):
            tickets = [server.submit(q) for q in queries]
            server.flush()
            values = [t.result() for t in tickets]
        assert len(values) == len(queries)
        snap = registry.snapshot()
        assert snap["serving.request.latency_s"]["count"] == len(queries)
        assert snap["serving.request.queue_wait_s"]["count"] == len(queries)
        assert snap["serving.request.count.nw"]["value"] == len(queries)
        assert snap["serving.request.outcome.ok"]["value"] == len(queries)
        assert snap["serving.request.throughput_qps"]["value"] > 0
        # latency includes queue wait, so quantiles must dominate
        assert (
            snap["serving.request.latency_s"]["p50"]
            >= snap["serving.request.queue_wait_s"]["p50"]
        )

    def test_flush_reason_counters(self, fitted):
        model, queries = fitted
        server = ModelServer(model, max_batch_size=4)
        for q in queries[:4]:
            server.submit(q)  # 4th submit auto-flushes
        server.submit(queries[4])
        server.flush()  # manual
        ticket = server.submit(queries[5])
        ticket.result()  # lazy
        stats = server.stats()
        assert stats.full_batches == 1
        assert stats.manual_flushes == 1
        assert stats.lazy_flushes == 1
        assert stats.flushes == 3
        assert stats.errors == 0
        assert stats.pending == 0

    def test_failed_flush_resolves_tickets_with_error(self, fitted, monkeypatch):
        model, queries = fitted
        server = ModelServer(model, max_batch_size=8)
        registry = MetricsRegistry()
        tickets = [server.submit(q) for q in queries[:3]]

        def boom(*args, **kwargs):
            raise ConfigurationError("poisoned batch")

        monkeypatch.setattr(model, "predict_batch", boom)
        with obs.use_registry(registry):
            with pytest.raises(ConfigurationError, match="poisoned"):
                server.flush()
        for ticket in tickets:
            assert ticket.done
            with pytest.raises(ConfigurationError, match="poisoned"):
                ticket.result()
        stats = server.stats()
        assert stats.errors == 3
        assert stats.answered == 0
        assert stats.pending == 0
        snap = registry.snapshot()
        assert snap["serving.request.outcome.error"]["value"] == 3
        assert "serving.request.outcome.ok" not in snap

    def test_telemetry_mode_validated(self, fitted):
        model, _ = fitted
        with pytest.raises(ConfigurationError, match="telemetry"):
            ModelServer(model, telemetry="loud")

    def test_off_mode_skips_request_series(self, fitted):
        model, queries = fitted
        registry = MetricsRegistry()
        server = ModelServer(model, max_batch_size=8, telemetry="off")
        with obs.use_registry(registry):
            tickets = [server.submit(q) for q in queries[:4]]
            server.flush()
            [t.result() for t in tickets]
        snap = registry.snapshot()
        assert not any(name.startswith("serving.request.") for name in snap)


class TestServerStatsExport:
    def test_record_serving_stats_exports_errors_and_flushes(self, fitted):
        model, queries = fitted
        server = ModelServer(model, max_batch_size=4)
        for q in queries[:4]:
            server.submit(q)
        tracer = obs.RecordingTracer()
        registry = MetricsRegistry()
        with obs.use_tracer(tracer), obs.use_registry(registry):
            with obs.span("stats") as span:
                record_serving_stats(span, server.stats())
        record = tracer.to_records()[-1]
        for key in ("serving.errors", "serving.flushes", "serving.full_batches"):
            assert key in record["attributes"]
        assert record["attributes"]["serving.errors"] == 0
        assert record["attributes"]["serving.pending"] == 0
