"""Unit tests for the cross-solve amortization workspace.

Covers the cache machinery (hits/misses/evictions), the continuation
state (warm starts, re-anchoring), invalidation on graph mutation
(including a hypothesis property test: a mutated workspace must raise or
recompute, never serve stale answers), and the ``x0`` threading through
``solve_spd``.  Numerical parity against direct solves lives in
``tests/test_workspace_parity.py``.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.core.hard import solve_hard_criterion
from repro.core.soft import solve_soft_criterion
from repro.datasets.synthetic import make_synthetic_dataset
from repro.exceptions import ConfigurationError, WorkspaceInvalidatedError
from repro.graph.similarity import full_kernel_graph, knn_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.linalg.solvers import SolveInfo, solve_spd
from repro.linalg.workspace import SolveWorkspace


@pytest.fixture(scope="module")
def problem():
    data = make_synthetic_dataset(60, 30, seed=7)
    bandwidth = paper_bandwidth_rule(60, 5)
    graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
    return data, graph


@pytest.fixture(scope="module")
def sparse_problem():
    data = make_synthetic_dataset(60, 60, seed=9)
    bandwidth = paper_bandwidth_rule(60, 5)
    graph = knn_graph(data.x_all, k=10, bandwidth=bandwidth)
    return data, graph


class TestFactorizationCache:
    def test_exact_repeat_solve_hits_cache(self, problem):
        data, graph = problem
        ws = SolveWorkspace(graph.weights, exact=True)
        a = ws.solve_soft(data.y_labeled, 0.1)
        b = ws.solve_soft(data.y_labeled, 0.1)
        stats = ws.stats()
        assert stats.factor_misses == 1
        assert stats.factor_hits == 1
        assert np.array_equal(a.scores, b.scores)

    def test_lru_eviction(self, problem):
        data, graph = problem
        ws = SolveWorkspace(graph.weights, exact=True, max_factorizations=2)
        for lam in (0.1, 0.2, 0.3):
            ws.solve_soft(data.y_labeled, lam)
        stats = ws.stats()
        assert stats.factor_evictions == 1
        # 0.1 was evicted: solving it again must miss, 0.3 must hit.
        ws.solve_soft(data.y_labeled, 0.3)
        assert ws.stats().factor_hits == 1
        ws.solve_soft(data.y_labeled, 0.1)
        assert ws.stats().factor_misses == 4

    def test_hard_factorization_reused_across_calls(self, problem):
        data, graph = problem
        ws = SolveWorkspace(graph.weights)
        ws.solve_hard(data.y_labeled)
        ws.solve_hard(data.y_labeled)
        ws.solve_soft(data.y_labeled, 0.0)  # delegates to hard
        stats = ws.stats()
        assert stats.factor_misses == 1
        assert stats.factor_hits == 2

    def test_distinct_masks_get_distinct_factorizations(self, problem):
        data, graph = problem
        ws = SolveWorkspace(graph.weights, exact=True)
        ws.solve_soft(data.y_labeled, 0.1)
        ws.solve_soft(data.y_labeled[:50], 0.1)
        assert ws.stats().factor_misses == 2

    def test_invalid_configuration_rejected(self, problem):
        _, graph = problem
        with pytest.raises(ConfigurationError):
            SolveWorkspace(graph.weights, backend="nope")
        with pytest.raises(ConfigurationError):
            SolveWorkspace(graph.weights, on_mutation="panic")
        with pytest.raises(ConfigurationError):
            SolveWorkspace(graph.weights, max_factorizations=0)
        ws = SolveWorkspace(graph.weights)
        with pytest.raises(ConfigurationError):
            ws.solve_soft(np.ones(10), 0.1, backend="nope")


class TestContinuation:
    def test_factored_sweep_warm_starts(self, problem):
        data, graph = problem
        ws = SolveWorkspace(graph.weights, backend="factored")
        ws.sweep_soft(data.y_labeled, (1e-3, 3e-3, 1e-2, 3e-2, 0.1))
        stats = ws.stats()
        # First grid point anchors; later points run warm-started PCG.
        assert stats.pcg_solves >= 1
        assert stats.warm_starts >= 1
        assert stats.factor_misses < 5

    def test_iterative_backend_reports_iterations_saved(self, problem):
        data, graph = problem
        ws = SolveWorkspace(graph.weights)
        cold = ws.solve_soft(data.y_labeled, 0.1, backend="cg")
        warm = ws.solve_soft(data.y_labeled, 0.10001, backend="cg")
        assert not cold.solve_info.warm_started
        assert warm.solve_info.warm_started
        assert warm.solve_info.iterations_saved is not None
        assert warm.solve_info.iterations < cold.solve_info.iterations

    def test_small_labeled_fraction_uses_woodbury(self):
        """With n_labeled <= min(512, N/4) the factored path solves the
        whole sweep off ONE factorization via the rank-n_labeled
        Woodbury update — no PCG, no re-anchoring."""
        data = make_synthetic_dataset(20, 100, seed=5)
        bandwidth = paper_bandwidth_rule(20, 5)
        graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
        ws = SolveWorkspace(graph.weights, backend="factored")
        fits = ws.sweep_soft(data.y_labeled, (1e-3, 1e-2, 0.1, 1.0, 10.0))
        stats = ws.stats()
        assert stats.factor_misses == 1
        assert stats.woodbury_solves == 4  # all but the anchor point
        assert stats.pcg_solves == 0
        assert stats.reanchors == 0
        for lam, fit in zip((1e-3, 1e-2, 0.1, 1.0, 10.0), fits):
            reference = solve_soft_criterion(
                graph.weights, data.y_labeled, lam, check_reachability=False
            )
            np.testing.assert_allclose(
                fit.scores, reference.scores, atol=1e-8, rtol=0
            )

    def test_exact_mode_overrides_backend(self, problem):
        data, graph = problem
        ws = SolveWorkspace(graph.weights, backend="spectral", exact=True)
        fit = ws.solve_soft(data.y_labeled, 0.1)
        assert fit.method == "workspace[exact]"
        assert ws.stats().spectral_builds == 0


class TestInvalidation:
    def test_dense_mutation_raises(self, problem):
        data, graph = problem
        weights = graph.weights.copy()
        ws = SolveWorkspace(weights)
        ws.solve_soft(data.y_labeled, 0.1)
        ws.weights[0, 1] += 0.25
        ws.weights[1, 0] += 0.25
        with pytest.raises(WorkspaceInvalidatedError):
            ws.solve_soft(data.y_labeled, 0.1)

    def test_sparse_mutation_raises(self, sparse_problem):
        data, graph = sparse_problem
        ws = SolveWorkspace(graph.weights.copy())
        ws.solve_hard(data.y_labeled)
        ws.weights.data[0] += 1.0
        with pytest.raises(WorkspaceInvalidatedError):
            ws.solve_hard(data.y_labeled)

    def test_recompute_mode_reflects_mutation(self, problem):
        data, graph = problem
        weights = graph.weights.copy()
        ws = SolveWorkspace(weights, exact=True, on_mutation="recompute")
        ws.solve_soft(data.y_labeled, 0.1)
        ws.weights[0, 1] += 0.25
        ws.weights[1, 0] += 0.25
        fit = ws.solve_soft(data.y_labeled, 0.1)
        reference = solve_soft_criterion(
            ws.weights, data.y_labeled, 0.1, check_reachability=False
        )
        np.testing.assert_allclose(fit.scores, reference.scores, atol=1e-8)

    def test_explicit_invalidate_clears_caches(self, problem):
        data, graph = problem
        ws = SolveWorkspace(graph.weights, exact=True)
        ws.solve_soft(data.y_labeled, 0.1)
        ws.invalidate()
        ws.solve_soft(data.y_labeled, 0.1)
        assert ws.stats().factor_misses == 2

    @settings(max_examples=15, deadline=None)
    @given(
        entry=st.tuples(
            st.integers(min_value=0, max_value=89),
            st.integers(min_value=0, max_value=89),
        ),
        bump=st.floats(min_value=1e-6, max_value=10.0),
        mode=st.sampled_from(["raise", "recompute"]),
    )
    def test_never_serves_stale_factorization(self, entry, bump, mode):
        """Property: after ANY symmetric weight bump, a workspace either
        raises or returns the answer for the mutated graph — never the
        cached answer for the old one.  Diagonal bumps are excluded: they
        shift the degree by the same amount, leaving ``L = D - W`` (and
        hence the solution) unchanged."""
        assume(entry[0] != entry[1])
        data = make_synthetic_dataset(60, 30, seed=3)
        bandwidth = paper_bandwidth_rule(60, 5)
        weights = full_kernel_graph(data.x_all, bandwidth=bandwidth).weights.copy()
        ws = SolveWorkspace(weights, exact=True, on_mutation=mode)
        stale = ws.solve_soft(data.y_labeled, 0.1)
        i, j = entry
        ws.weights[i, j] += bump
        ws.weights[j, i] = ws.weights[i, j]
        if mode == "raise":
            with pytest.raises(WorkspaceInvalidatedError):
                ws.solve_soft(data.y_labeled, 0.1)
        else:
            fresh = ws.solve_soft(data.y_labeled, 0.1)
            reference = solve_soft_criterion(
                ws.weights, data.y_labeled, 0.1, check_reachability=False
            )
            np.testing.assert_allclose(fresh.scores, reference.scores, atol=1e-8)
            assert not np.array_equal(fresh.scores, stale.scores)


class TestCoreDelegation:
    def test_soft_workspace_kwarg(self, problem):
        data, graph = problem
        ws = SolveWorkspace(graph.weights, exact=True)
        fit = solve_soft_criterion(
            graph.weights, data.y_labeled, 0.1, workspace=ws
        )
        assert fit.method == "workspace[exact]"
        assert ws.stats().factor_misses == 1

    def test_hard_workspace_kwarg(self, problem):
        data, graph = problem
        ws = SolveWorkspace(graph.weights)
        fit = solve_hard_criterion(graph.weights, data.y_labeled, workspace=ws)
        reference = solve_hard_criterion(
            graph.weights, data.y_labeled, check_reachability=False
        )
        np.testing.assert_array_equal(fit.scores[:60], data.y_labeled)
        np.testing.assert_allclose(fit.scores, reference.scores, atol=1e-10)


class TestSolveSpdWarmStart:
    """Satellite: x0 threading through solve_spd."""

    def _system(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(40, 40))
        return a @ a.T + 40 * np.eye(40), rng.normal(size=40)

    def test_x0_forwarded_to_iterative(self):
        system, rhs = self._system()
        exact = np.linalg.solve(system, rhs)
        cold, cold_info = solve_spd(system, rhs, method="cg", return_info=True)
        warm, warm_info = solve_spd(
            system, rhs, method="cg", x0=exact, return_info=True
        )
        assert not cold_info.warm_started
        assert warm_info.warm_started
        assert warm_info.iterations < cold_info.iterations
        np.testing.assert_allclose(warm, exact, atol=1e-8)

    def test_x0_ignored_by_direct(self):
        system, rhs = self._system()
        plain = solve_spd(system, rhs)
        with_x0 = solve_spd(system, rhs, x0=np.ones(40))
        np.testing.assert_array_equal(plain, with_x0)

    def test_solveinfo_new_fields_default(self):
        info = SolveInfo(method="cholesky", size=5)
        assert info.warm_started is False
        assert info.iterations_saved is None
