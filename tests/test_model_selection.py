"""Tests for transductive cross-validation and grid search."""

import numpy as np
import pytest

from repro.datasets.synthetic import make_synthetic_dataset
from repro.exceptions import ConfigurationError, DataValidationError
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.model_selection.search import (
    cross_validate_lambda,
    select_bandwidth,
    select_lambda,
)


@pytest.fixture(scope="module")
def cv_problem():
    data = make_synthetic_dataset(80, 25, seed=11)
    bandwidth = paper_bandwidth_rule(80, 5)
    weights = full_kernel_graph(data.x_all, bandwidth=bandwidth).dense_weights()
    return data, weights


class TestCrossValidateLambda:
    def test_returns_finite_positive_loss(self, cv_problem):
        data, weights = cv_problem
        loss = cross_validate_lambda(weights, data.y_labeled, 0.1, seed=0)
        assert np.isfinite(loss) and loss > 0

    def test_lambda_zero_evaluates_hard(self, cv_problem):
        data, weights = cv_problem
        loss = cross_validate_lambda(weights, data.y_labeled, 0.0, seed=0)
        assert np.isfinite(loss)

    def test_deterministic_given_seed(self, cv_problem):
        data, weights = cv_problem
        a = cross_validate_lambda(weights, data.y_labeled, 0.1, seed=3)
        b = cross_validate_lambda(weights, data.y_labeled, 0.1, seed=3)
        assert a == b

    def test_huge_lambda_scores_worse_than_hard(self, cv_problem):
        """CV must detect the collapse-to-mean degradation."""
        data, weights = cv_problem
        hard_loss = cross_validate_lambda(weights, data.y_labeled, 0.0, seed=0)
        collapsed_loss = cross_validate_lambda(weights, data.y_labeled, 1e6, seed=0)
        assert collapsed_loss > hard_loss

    def test_too_few_labels_raises(self, cv_problem):
        _, weights = cv_problem
        with pytest.raises(DataValidationError):
            cross_validate_lambda(weights, np.ones(3), 0.1, n_folds=5)


class TestSelectLambda:
    def test_structure(self, cv_problem):
        data, weights = cv_problem
        result = select_lambda(
            weights, data.y_labeled, grid=(0.0, 0.1, 5.0), seed=0
        )
        assert result.grid == (0.0, 0.1, 5.0)
        assert len(result.scores) == 3
        assert result.best_value in result.grid
        assert result.best_score == min(result.scores)
        assert len(result.to_rows()) == 3

    def test_prefers_small_lambda_on_paper_dgp(self, cv_problem):
        """On the paper's DGP, CV should pick lambda from the small end."""
        data, weights = cv_problem
        result = select_lambda(
            weights, data.y_labeled, grid=(0.0, 0.01, 5.0, 100.0), seed=1
        )
        assert result.best_value <= 0.01

    def test_empty_grid_raises(self, cv_problem):
        data, weights = cv_problem
        with pytest.raises(ConfigurationError):
            select_lambda(weights, data.y_labeled, grid=())

    def test_negative_lambda_rejected(self, cv_problem):
        data, weights = cv_problem
        with pytest.raises(ConfigurationError):
            select_lambda(weights, data.y_labeled, grid=(-0.1, 0.1))


class TestSelectBandwidth:
    def test_picks_reasonable_bandwidth(self):
        data = make_synthetic_dataset(60, 20, seed=5)
        reference = paper_bandwidth_rule(60, 5)
        grid = (0.1 * reference, reference, 10.0 * reference)
        result = select_bandwidth(
            data.x_labeled, data.y_labeled, data.x_unlabeled,
            grid=grid, seed=0,
        )
        assert result.best_value in grid
        # The absurdly small bandwidth (near-disconnected graph) must not win.
        assert result.best_value != grid[0]

    def test_invalid_grid_raises(self):
        data = make_synthetic_dataset(20, 5, seed=6)
        with pytest.raises(ConfigurationError):
            select_bandwidth(
                data.x_labeled, data.y_labeled, data.x_unlabeled, grid=()
            )
        with pytest.raises(ConfigurationError):
            select_bandwidth(
                data.x_labeled, data.y_labeled, data.x_unlabeled, grid=(0.0,)
            )


class TestSelectBandwidthKnnRoute:
    """The large-N bugfix: bandwidth search over a sparse kNN graph must
    never materialise an (N, N) array."""

    def _problem(self, seed=5):
        data = make_synthetic_dataset(60, 20, seed=seed)
        reference = paper_bandwidth_rule(60, 5)
        grid = (0.1 * reference, reference, 10.0 * reference)
        return data, grid

    def test_knn_route_agrees_with_full_on_best_value(self):
        data, grid = self._problem()
        full = select_bandwidth(
            data.x_labeled, data.y_labeled, data.x_unlabeled,
            grid=grid, seed=0,
        )
        knn = select_bandwidth(
            data.x_labeled, data.y_labeled, data.x_unlabeled,
            grid=grid, seed=0, graph="knn", sweep_backend="exact",
            graph_params={"k": 15},
        )
        assert knn.best_value in grid
        assert knn.best_value == full.best_value

    def test_approx_construction_and_multigrid_backend(self):
        data, grid = self._problem(seed=6)
        result = select_bandwidth(
            data.x_labeled, data.y_labeled, data.x_unlabeled,
            grid=grid, seed=0, graph="knn", sweep_backend="multigrid",
            graph_params={"k": 12, "construction": "approx", "n_trees": 8},
        )
        assert result.best_value in grid
        assert np.isfinite(result.best_score)

    def test_invalid_graph_arguments_rejected(self):
        data, grid = self._problem()
        args = (data.x_labeled, data.y_labeled, data.x_unlabeled)
        with pytest.raises(ConfigurationError, match="graph must"):
            select_bandwidth(*args, grid=grid, graph="mesh")
        with pytest.raises(ConfigurationError, match="graph_params"):
            select_bandwidth(*args, grid=grid, graph_params={"k": 5})
        with pytest.raises(ConfigurationError, match="unknown graph_params"):
            select_bandwidth(
                *args, grid=grid, graph="knn", graph_params={"radius": 1.0}
            )
        with pytest.raises(ConfigurationError, match="construction"):
            select_bandwidth(
                *args, grid=grid, graph="knn",
                graph_params={"construction": "magic"},
            )

    def test_knn_route_never_allocates_dense_n_by_n(self, monkeypatch):
        """Mirror of the PR-2 graph-construction guard, for the search:
        N=8000 bandwidth selection through the knn route must stay under
        an N^2/4-element allocation budget."""
        n_total = 8000
        n_labeled = 40
        budget = n_total * n_total // 4

        rng = np.random.default_rng(0)
        x_all = rng.normal(size=(n_total, 2))
        y_labeled = np.sign(x_all[:n_labeled, 0])
        y_labeled[y_labeled == 0] = 1.0

        def guarded(allocator):
            def wrapper(shape, *args, **kwargs):
                size = int(np.prod(np.atleast_1d(shape)))
                assert size < budget, (
                    f"dense allocation of shape {shape} during knn "
                    f"bandwidth selection"
                )
                return allocator(shape, *args, **kwargs)

            return wrapper

        monkeypatch.setattr(np, "empty", guarded(np.empty))
        monkeypatch.setattr(np, "zeros", guarded(np.zeros))
        monkeypatch.setattr(np, "ones", guarded(np.ones))

        result = select_bandwidth(
            x_all[:n_labeled],
            y_labeled,
            x_all[n_labeled:],
            grid=(0.05, 0.2),
            lam=0.1,
            n_folds=2,
            seed=0,
            sweep_backend="exact",
            graph="knn",
            graph_params={"k": 8},
        )
        assert result.best_value in (0.05, 0.2)
