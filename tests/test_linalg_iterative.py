"""Unit tests for the from-scratch iterative solvers."""

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import ConvergenceError, DataValidationError
from repro.linalg.iterative import conjugate_gradient, gauss_seidel, jacobi

SOLVERS = [jacobi, gauss_seidel, conjugate_gradient]


def _spd_diag_dominant(rng, n):
    """SPD and strictly diagonally dominant (converges for all 3 methods)."""
    a = rng.uniform(0, 1, size=(n, n))
    a = 0.5 * (a + a.T)
    np.fill_diagonal(a, a.sum(axis=1) + 1.0)
    return a


@pytest.mark.parametrize("solver", SOLVERS, ids=lambda s: s.__name__)
class TestCommonBehaviour:
    def test_solves_spd_system(self, solver, rng):
        a = _spd_diag_dominant(rng, 10)
        x_true = rng.normal(size=10)
        result = solver(a, a @ x_true, tol=1e-12)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, atol=1e-8)

    def test_residual_history_decreases_overall(self, solver, rng):
        a = _spd_diag_dominant(rng, 8)
        result = solver(a, rng.normal(size=8), tol=1e-12)
        assert result.residual_norms[-1] < result.residual_norms[0]

    def test_x0_starting_point_accepted(self, solver, rng):
        a = _spd_diag_dominant(rng, 6)
        x_true = rng.normal(size=6)
        result = solver(a, a @ x_true, x0=x_true, tol=1e-12)
        assert result.iterations == 0

    def test_dimension_mismatch_raises(self, solver, rng):
        a = _spd_diag_dominant(rng, 4)
        with pytest.raises(DataValidationError):
            solver(a, np.ones(5))

    def test_bad_x0_raises(self, solver, rng):
        a = _spd_diag_dominant(rng, 4)
        with pytest.raises(DataValidationError):
            solver(a, np.ones(4), x0=np.ones(3))

    def test_non_square_raises(self, solver, rng):
        with pytest.raises(DataValidationError):
            solver(rng.normal(size=(3, 4)), np.ones(3))

    def test_zero_rhs_gives_zero(self, solver, rng):
        a = _spd_diag_dominant(rng, 5)
        result = solver(a, np.zeros(5))
        np.testing.assert_allclose(result.x, np.zeros(5), atol=1e-12)


class TestJacobi:
    def test_sparse_input(self, rng):
        a = _spd_diag_dominant(rng, 12)
        x_true = rng.normal(size=12)
        result = jacobi(sparse.csr_matrix(a), a @ x_true, tol=1e-12)
        np.testing.assert_allclose(result.x, x_true, atol=1e-8)

    def test_zero_diagonal_raises(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(DataValidationError, match="diagonal"):
            jacobi(a, np.ones(2))

    def test_divergence_raises_convergence_error(self):
        # Not diagonally dominant; Jacobi diverges.
        a = np.array([[1.0, 3.0], [3.0, 1.0]])
        with pytest.raises(ConvergenceError) as excinfo:
            jacobi(a, np.ones(2), max_iter=100)
        assert excinfo.value.iterations == 100


class TestGaussSeidel:
    def test_converges_faster_than_jacobi(self, rng):
        a = _spd_diag_dominant(rng, 10)
        b = rng.normal(size=10)
        gs = gauss_seidel(a, b, tol=1e-10)
        ja = jacobi(a, b, tol=1e-10)
        assert gs.iterations <= ja.iterations

    def test_spd_but_not_dominant_converges(self, rng):
        q, _ = np.linalg.qr(rng.normal(size=(6, 6)))
        a = q @ np.diag(rng.uniform(0.5, 5.0, 6)) @ q.T
        x_true = rng.normal(size=6)
        result = gauss_seidel(a, a @ x_true, tol=1e-11, max_iter=50_000)
        np.testing.assert_allclose(result.x, x_true, atol=1e-6)


class TestConjugateGradient:
    def test_exact_termination_bound(self, rng):
        """CG converges within ~n iterations on well-conditioned systems."""
        a = _spd_diag_dominant(rng, 20)
        result = conjugate_gradient(a, rng.normal(size=20), tol=1e-10)
        assert result.iterations <= 25

    def test_indefinite_matrix_raises(self, rng):
        a = np.diag([1.0, -1.0, 2.0])
        with pytest.raises(ConvergenceError, match="positive definite"):
            conjugate_gradient(a, np.array([1.0, 1.0, 1.0]))

    def test_sparse_matches_dense(self, rng):
        a = _spd_diag_dominant(rng, 15)
        b = rng.normal(size=15)
        dense = conjugate_gradient(a, b, tol=1e-12).x
        sp = conjugate_gradient(sparse.csr_matrix(a), b, tol=1e-12).x
        np.testing.assert_allclose(dense, sp, atol=1e-9)

    def test_max_iter_exhaustion_raises(self, rng):
        a = _spd_diag_dominant(rng, 30)
        with pytest.raises(ConvergenceError):
            conjugate_gradient(a, rng.normal(size=30), tol=1e-14, max_iter=2)
