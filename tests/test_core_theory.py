"""Unit tests for the Theorem II.1 assumption checkers."""

import math

import numpy as np
import pytest

from repro.core.theory import (
    check_theorem_assumptions,
    consistency_ratio,
    tiny_element_bound,
    volume_unit_ball,
)
from repro.exceptions import AssumptionViolationError, DataValidationError
from repro.kernels.library import BoxcarKernel, GaussianKernel


class TestVolumeUnitBall:
    def test_known_dimensions(self):
        assert volume_unit_ball(1) == pytest.approx(2.0)
        assert volume_unit_ball(2) == pytest.approx(math.pi)
        assert volume_unit_ball(3) == pytest.approx(4.0 * math.pi / 3.0)

    def test_invalid_dim(self):
        with pytest.raises(DataValidationError):
            volume_unit_ball(0)


class TestConsistencyRatio:
    def test_formula(self):
        assert consistency_ratio(100, 30, 0.5, 2) == pytest.approx(30 / (100 * 0.25))

    def test_vanishes_under_paper_bandwidth(self):
        """m fixed, h = (log n / n)^{1/d}: ratio = m / log n -> 0."""
        from repro.kernels.bandwidth import paper_bandwidth_rule

        d, m = 5, 30
        ratios = [
            consistency_ratio(n, m, paper_bandwidth_rule(n, d), d)
            for n in (10, 100, 10_000, 10_000_000)
        ]
        assert all(b < a for a, b in zip(ratios, ratios[1:]))

    def test_validation(self):
        with pytest.raises(DataValidationError):
            consistency_ratio(0, 1, 0.5, 2)
        with pytest.raises(DataValidationError):
            consistency_ratio(1, -1, 0.5, 2)
        with pytest.raises(DataValidationError):
            consistency_ratio(1, 1, 0.0, 2)


class TestTinyElementBound:
    def test_boxcar_closed_form(self):
        """Boxcar: k*=1, beta=1, delta=1 so M = 4 / (s* V_d)."""
        bound = tiny_element_bound(BoxcarKernel(), n=100, bandwidth=0.5, dim=2, density_lower_bound=1.0)
        s = 1.0 * math.pi * 1.0 / 2.0
        expected = (2.0 / s) / (100 * 0.25)
        assert bound == pytest.approx(expected)

    def test_shrinks_with_n(self):
        kernel = GaussianKernel()
        b1 = tiny_element_bound(kernel, 100, 0.5, 2, 1.0)
        b2 = tiny_element_bound(kernel, 1000, 0.5, 2, 1.0)
        assert b2 < b1

    def test_requires_positive_density(self):
        with pytest.raises(DataValidationError):
            tiny_element_bound(GaussianKernel(), 10, 0.5, 2, 0.0)

    def test_actually_bounds_matrix_elements(self, small_problem):
        """Empirical ||D22^{-1} W22||_max is below the theoretical envelope
        (with a conservative density lower bound)."""
        data, weights, bandwidth = small_problem
        n = data.n_labeled
        degrees = weights.sum(axis=1)
        iterated = weights[n:, n:] / degrees[n:, None]
        empirical = float(np.max(iterated))
        bound = tiny_element_bound(
            GaussianKernel(), n, bandwidth, dim=5, density_lower_bound=0.05
        )
        assert empirical <= bound


class TestAssumptionReport:
    def test_gaussian_fails_compact_support(self):
        report = check_theorem_assumptions(
            GaussianKernel(), n=1000, m=30, dim=5, bandwidth=0.5
        )
        assert not report.kernel_conditions.compact_support
        assert not report.all_satisfied

    def test_boxcar_with_good_growth_passes(self):
        report = check_theorem_assumptions(
            BoxcarKernel(), n=10_000, m=5, dim=2, bandwidth=0.3
        )
        assert report.all_satisfied

    def test_growth_violation_detected(self):
        report = check_theorem_assumptions(
            BoxcarKernel(), n=10, m=10_000, dim=2, bandwidth=0.3
        )
        assert not report.growth_ok

    def test_strict_mode_raises(self):
        with pytest.raises(AssumptionViolationError, match="assumptions violated"):
            check_theorem_assumptions(
                GaussianKernel(), n=100, m=30, dim=5, bandwidth=0.5, strict=True
            )

    def test_summary_mentions_key_quantities(self):
        report = check_theorem_assumptions(
            BoxcarKernel(), n=100, m=30, dim=2, bandwidth=0.5
        )
        text = report.summary()
        assert "n h^d" in text
        assert "m/(n h^d)" in text

    def test_effective_mass_formula(self):
        report = check_theorem_assumptions(
            BoxcarKernel(), n=100, m=10, dim=2, bandwidth=0.5
        )
        assert report.effective_labeled_mass == pytest.approx(25.0)
        assert report.growth_ratio == pytest.approx(0.4)

    def test_invalid_sizes_raise(self):
        with pytest.raises(DataValidationError):
            check_theorem_assumptions(BoxcarKernel(), n=0, m=1, dim=2, bandwidth=0.5)
