"""Tests for the parallel replicate executor.

The contract under test: for a fixed master seed, ``run_replicates`` at
any ``n_jobs`` returns a :class:`ReplicateSummary` *exactly* equal to
the serial result (same seed stream, same ordering, same floats), and
observability (span subtrees, metric counters) survives the process
boundary.  Unpicklable callables must degrade to serial with a warning,
never crash.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import obs
from repro.exceptions import ConfigurationError
from repro.experiments.executor import (
    ParallelFallbackWarning,
    default_chunksize,
    execute_replicates,
    resolve_n_jobs,
)
from repro.experiments.runner import run_replicates
from repro.utils.rng import spawn_seeds


def _draw_replicate(rng):
    """Module-level (picklable) replicate: metrics derived from the stream."""
    return {"u": float(rng.random()), "v": float(rng.normal())}


def _counting_replicate(rng):
    """Replicate that exercises worker-side spans and metrics."""
    registry = obs.get_registry()
    registry.counter("test.replicate_calls").inc()
    registry.histogram("test.draws").observe(rng.random())
    with obs.span("test.inner", kind="work") as span:
        value = float(rng.random())
        if span.recording:
            span.set_attribute("value", value)
    return {"value": value}


class TestResolveNJobs:
    def test_none_and_one_are_serial(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(1) == 1

    def test_minus_one_uses_cpu_count(self):
        assert resolve_n_jobs(-1) >= 1

    def test_invalid_values_raise(self):
        for bad in (0, -2, -100):
            with pytest.raises(ConfigurationError):
                resolve_n_jobs(bad)

    def test_positive_passthrough(self):
        assert resolve_n_jobs(4) == 4


class TestDefaultChunksize:
    def test_targets_four_chunks_per_worker(self):
        assert default_chunksize(100, 4) == 7
        assert default_chunksize(8, 2) == 1

    def test_never_below_one(self):
        assert default_chunksize(1, 16) == 1
        assert default_chunksize(0, 4) == 1


class TestSeedStreamStability:
    def test_spawn_seeds_survive_pickling(self):
        """SeedSequence children generate identical streams after a
        process-boundary round-trip (what workers actually receive)."""
        for seed_seq in spawn_seeds(42, 5):
            shipped = pickle.loads(pickle.dumps(seed_seq))
            local = np.random.default_rng(seed_seq).random(8)
            remote = np.random.default_rng(shipped).random(8)
            assert np.array_equal(local, remote)

    def test_spawn_seeds_deterministic(self):
        a = [s.generate_state(4) for s in spawn_seeds(7, 3)]
        b = [s.generate_state(4) for s in spawn_seeds(7, 3)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)


class TestParallelParity:
    def test_summary_exactly_equals_serial(self):
        serial = run_replicates(_draw_replicate, n_replicates=12, seed=99)
        parallel = run_replicates(_draw_replicate, n_replicates=12, seed=99, n_jobs=2)
        assert parallel == serial  # dataclass equality: means/stds/sems/values
        assert parallel.values == serial.values  # exact tuples, not approx

    def test_parity_across_job_counts(self):
        results = [
            run_replicates(_draw_replicate, n_replicates=9, seed=5, n_jobs=n)
            for n in (1, 2, 4)
        ]
        assert results[0] == results[1] == results[2]

    def test_replicate_ordering_preserved(self):
        """values tuples are in replicate-index order, not completion order."""
        serial = run_replicates(_draw_replicate, n_replicates=16, seed=3)
        parallel = run_replicates(_draw_replicate, n_replicates=16, seed=3, n_jobs=4)
        assert parallel.values["u"] == serial.values["u"]

    def test_executor_returns_outcomes_in_order(self):
        seeds = spawn_seeds(11, 6)
        outcomes = execute_replicates(
            _draw_replicate, seeds, n_jobs=2, record_spans=False
        )
        assert outcomes is not None
        assert [o.index for o in outcomes] == list(range(6))

    def test_serial_request_returns_none(self):
        seeds = spawn_seeds(0, 3)
        assert execute_replicates(_draw_replicate, seeds, n_jobs=1) is None


class TestPicklingFallback:
    def test_lambda_falls_back_with_warning(self):
        with pytest.warns(ParallelFallbackWarning, match="cannot be pickled"):
            summary = run_replicates(
                lambda rng: {"x": float(rng.random())},
                n_replicates=4,
                seed=1,
                n_jobs=2,
            )
        # The fallback still produces the correct serial result.
        reference = run_replicates(
            lambda rng: {"x": float(rng.random())}, n_replicates=4, seed=1
        )
        assert summary == reference

    def test_closure_falls_back_with_warning(self):
        offset = 10.0

        def replicate(rng):
            return {"x": offset + rng.random()}

        with pytest.warns(ParallelFallbackWarning):
            summary = run_replicates(replicate, n_replicates=3, seed=0, n_jobs=2)
        assert summary.n_replicates == 3


class TestObservabilityAcrossProcesses:
    def test_span_subtrees_are_merged(self):
        tracer = obs.RecordingTracer()
        with obs.use_tracer(tracer), obs.use_registry():
            with obs.span("experiment"):
                run_replicates(_counting_replicate, n_replicates=4, seed=0, n_jobs=2)
        names = [s.name for s in tracer.iter_spans()]
        assert names.count("repro.replicate") == 4
        assert names.count("test.inner") == 4
        # Worker subtrees are grafted under the span open at merge time.
        root = tracer.roots[0]
        assert root.name == "experiment"
        replicates = [c for c in root.children if c.name == "repro.replicate"]
        assert len(replicates) == 4
        for rep in replicates:
            assert [c.name for c in rep.children] == ["test.inner"]
            assert "metric.value" in rep.attributes

    def test_replicate_span_attributes_match_serial(self):
        def collect(n_jobs):
            tracer = obs.RecordingTracer()
            with obs.use_tracer(tracer), obs.use_registry():
                run_replicates(
                    _counting_replicate, n_replicates=3, seed=8, n_jobs=n_jobs
                )
            return [
                s.attributes
                for s in tracer.iter_spans()
                if s.name == "repro.replicate"
            ]

        serial = collect(1)
        parallel = collect(2)
        assert [a["metric.value"] for a in parallel] == [
            a["metric.value"] for a in serial
        ]
        assert [a["index"] for a in parallel] == [0, 1, 2]

    def test_metrics_merged_into_parent_registry(self):
        with obs.use_registry() as registry:
            run_replicates(_counting_replicate, n_replicates=5, seed=2, n_jobs=2)
        assert registry.counter("test.replicate_calls").value == 5
        assert registry.counter("replicates.completed").value == 5
        histogram = registry.histogram("test.draws")
        assert histogram.count == 5
        assert len(histogram.samples) == 5

    def test_no_spans_recorded_when_tracing_disabled(self):
        with obs.use_registry():
            summary = run_replicates(
                _counting_replicate, n_replicates=3, seed=2, n_jobs=2
            )
        assert summary.n_replicates == 3


class TestRegistryStateMerge:
    def test_counter_gauge_histogram_roundtrip(self):
        source = obs.MetricsRegistry()
        source.counter("c").inc(3)
        source.gauge("g").set(1.5)
        for value in (1.0, 2.0, 3.0):
            source.histogram("h").observe(value)

        target = obs.MetricsRegistry()
        target.counter("c").inc(1)
        target.merge_state(source.to_state())
        assert target.counter("c").value == 4
        assert target.gauge("g").value == 1.5
        merged = target.histogram("h")
        assert merged.count == 3
        assert merged.total == 6.0
        assert merged.min == 1.0 and merged.max == 3.0

    def test_kind_conflict_raises(self):
        source = obs.MetricsRegistry()
        source.counter("name").inc()
        target = obs.MetricsRegistry()
        target.gauge("name").set(1.0)
        with pytest.raises(TypeError):
            target.merge_state(source.to_state())

    def test_unknown_kind_raises(self):
        target = obs.MetricsRegistry()
        with pytest.raises(ValueError, match="unknown kind"):
            target.merge_state({"x": {"kind": "mystery", "value": 1}})


class TestAdoptRecords:
    def test_adopts_under_open_span(self):
        worker = obs.RecordingTracer()
        with obs.use_tracer(worker):
            with obs.span("outer", index=0):
                with obs.span("inner"):
                    pass

        parent = obs.RecordingTracer()
        with obs.use_tracer(parent):
            with obs.span("session"):
                parent.adopt_records(worker.to_records())
        session = parent.roots[0]
        assert [c.name for c in session.children] == ["outer"]
        outer = session.children[0]
        assert outer.depth == 1
        assert [c.name for c in outer.children] == ["inner"]
        assert outer.children[0].depth == 2
        assert outer.attributes == {"index": 0}

    def test_adopts_as_roots_without_open_span(self):
        worker = obs.RecordingTracer()
        with obs.use_tracer(worker):
            with obs.span("solo"):
                pass
        parent = obs.RecordingTracer()
        parent.adopt_records(worker.to_records())
        assert [r.name for r in parent.roots] == ["solo"]
        assert parent.roots[0].parent_id is None

    def test_durations_and_ids_preserved_and_reassigned(self):
        worker = obs.RecordingTracer()
        with obs.use_tracer(worker):
            with obs.span("timed"):
                pass
        duration = worker.roots[0].duration

        parent = obs.RecordingTracer()
        with obs.use_tracer(parent):
            with obs.span("session"):
                parent.adopt_records(worker.to_records())
        adopted = parent.roots[0].children[0]
        assert adopted.duration == duration
        assert adopted.span_id == 2  # fresh id from the parent's counter
