"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in (
            "figure1", "figure2", "figure3", "figure4", "figure5",
            "toy", "complexity", "prop21", "prop22",
            "proof-constructs", "consistency", "metric-study",
            "m-growth", "tuned-lambda", "lambda-curve",
        ):
            args = parser.parse_args([command])
            assert args.command == command
            assert callable(args.handler)

    def test_common_options_parsed(self):
        args = build_parser().parse_args(
            ["figure1", "--seed", "7", "--replicates", "3", "--csv", "/tmp/x.csv"]
        )
        assert args.seed == 7
        assert args.replicates == 3
        assert args.csv == "/tmp/x.csv"


class TestCommands:
    def test_toy_command(self, capsys):
        code = main(["toy", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "toy example" in out
        assert "labeled mean" in out

    def test_figure1_tiny(self, capsys, tmp_path):
        csv = tmp_path / "fig1.csv"
        code = main([
            "figure1", "--replicates", "2", "--seed", "0", "--csv", str(csv),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "figure1" in out
        assert csv.exists()
        header = csv.read_text().splitlines()[0]
        assert header.startswith("n,lambda=0")

    def test_prop21_command(self, capsys):
        code = main(["prop21", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Proposition II.1" in out

    def test_prop22_command(self, capsys):
        code = main(["prop22", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Proposition II.2" in out
        assert "gap" in out

    def test_m_growth_command(self, capsys):
        code = main([
            "m-growth", "--gamma", "1.2", "--replicates", "2", "--seed", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "m-growth" in out
        assert "hard always ahead" in out

    def test_metric_study_command(self, capsys):
        code = main(["metric-study", "--replicates", "2", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "auc" in out and "mcc" in out

    def test_tuned_lambda_command(self, capsys):
        code = main(["tuned-lambda", "--replicates", "2", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CV-tuned" in out or "CV selected" in out

    def test_figure5_tiny(self, capsys):
        code = main([
            "figure5", "--images-per-class", "20", "--repeats", "1",
            "--seed", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "figure5" in out
        assert "ratio 80/20" in out

    def test_complexity_command(self, capsys):
        code = main(["complexity", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "exponents" in out

    def test_proof_constructs_command(self, capsys):
        code = main(["proof-constructs", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "spec radius" in out

    def test_lambda_curve_command(self, capsys):
        code = main(["lambda-curve", "--replicates", "2", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "anchors" in out

    def test_ablation_command(self, capsys):
        code = main(["ablation", "graph", "--replicates", "2", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "full" in out and "knn" in out

    def test_ablation_solvers_command(self, capsys):
        code = main(["ablation", "solvers", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "direct" in out

    def test_diagnose_command(self, capsys, tmp_path, rng):
        from repro.datasets.io import TransductiveProblem, save_transductive_npz

        problem = TransductiveProblem(
            x_labeled=rng.normal(size=(20, 3)),
            y_labeled=rng.integers(0, 2, 20).astype(float),
            x_unlabeled=rng.normal(size=(8, 3)),
        )
        path = save_transductive_npz(tmp_path / "p.npz", problem)
        code = main(["diagnose", str(path)])
        out = capsys.readouterr().out
        assert "graph:" in out
        assert code in (0, 1)  # healthy or warned, but never crashed

    def test_diagnose_flags_disconnected(self, capsys, tmp_path, rng):
        from repro.datasets.io import TransductiveProblem, save_transductive_npz

        problem = TransductiveProblem(
            x_labeled=rng.normal(size=(10, 2)),
            y_labeled=rng.integers(0, 2, 10).astype(float),
            x_unlabeled=rng.normal(size=(4, 2)) + 1000.0,
        )
        path = save_transductive_npz(tmp_path / "far.npz", problem)
        code = main(["diagnose", str(path), "--bandwidth", "0.5"])
        out = capsys.readouterr().out
        assert code == 1
        assert "warnings" in out
