"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.bench import BenchRecord, BenchRecorder


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in (
            "figure1", "figure2", "figure3", "figure4", "figure5",
            "toy", "complexity", "prop21", "prop22",
            "proof-constructs", "consistency", "metric-study",
            "m-growth", "tuned-lambda", "lambda-curve",
        ):
            args = parser.parse_args([command])
            assert args.command == command
            assert callable(args.handler)

    def test_common_options_parsed(self):
        args = build_parser().parse_args(
            ["figure1", "--seed", "7", "--replicates", "3", "--csv", "/tmp/x.csv"]
        )
        assert args.seed == 7
        assert args.replicates == 3
        assert args.csv == "/tmp/x.csv"

    def test_trace_and_metrics_flags_parsed(self):
        args = build_parser().parse_args(
            ["toy", "--trace", "/tmp/t.jsonl", "--metrics", "/tmp/m.json"]
        )
        assert args.trace == "/tmp/t.jsonl"
        assert args.metrics == "/tmp/m.json"

    def test_jobs_flag_parsed(self):
        args = build_parser().parse_args(["figure1", "--jobs", "2"])
        assert args.jobs == 2
        assert build_parser().parse_args(["figure1"]).jobs == 1
        assert build_parser().parse_args(["consistency", "--jobs", "-1"]).jobs == -1

    def test_bench_verbs_registered(self):
        parser = build_parser()
        report = parser.parse_args(["bench-report", "run.json"])
        assert report.command == "bench-report"
        compare = parser.parse_args(
            ["bench-compare", "old.json", "new.json", "--threshold", "0.2"]
        )
        assert compare.command == "bench-compare"
        assert compare.threshold == pytest.approx(0.2)
        assert compare.min_repeats == 3


class TestCommands:
    def test_toy_command(self, capsys):
        code = main(["toy", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "toy example" in out
        assert "labeled mean" in out

    def test_figure1_tiny(self, capsys, tmp_path):
        csv = tmp_path / "fig1.csv"
        code = main([
            "figure1", "--replicates", "2", "--seed", "0", "--csv", str(csv),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "figure1" in out
        assert csv.exists()
        header = csv.read_text().splitlines()[0]
        assert header.startswith("n,lambda=0")

    def test_prop21_command(self, capsys):
        code = main(["prop21", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Proposition II.1" in out

    def test_prop22_command(self, capsys):
        code = main(["prop22", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Proposition II.2" in out
        assert "gap" in out

    def test_m_growth_command(self, capsys):
        code = main([
            "m-growth", "--gamma", "1.2", "--replicates", "2", "--seed", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "m-growth" in out
        assert "hard always ahead" in out

    def test_metric_study_command(self, capsys):
        code = main(["metric-study", "--replicates", "2", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "auc" in out and "mcc" in out

    def test_tuned_lambda_command(self, capsys):
        code = main(["tuned-lambda", "--replicates", "2", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CV-tuned" in out or "CV selected" in out

    def test_figure5_tiny(self, capsys):
        code = main([
            "figure5", "--images-per-class", "20", "--repeats", "1",
            "--seed", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "figure5" in out
        assert "ratio 80/20" in out

    def test_complexity_command(self, capsys):
        code = main(["complexity", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "exponents" in out

    def test_proof_constructs_command(self, capsys):
        code = main(["proof-constructs", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "spec radius" in out

    def test_lambda_curve_command(self, capsys):
        code = main(["lambda-curve", "--replicates", "2", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "anchors" in out

    def test_ablation_command(self, capsys):
        code = main(["ablation", "graph", "--replicates", "2", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "full" in out and "knn" in out

    def test_ablation_solvers_command(self, capsys):
        code = main(["ablation", "solvers", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "direct" in out

    def test_diagnose_command(self, capsys, tmp_path, rng):
        from repro.datasets.io import TransductiveProblem, save_transductive_npz

        problem = TransductiveProblem(
            x_labeled=rng.normal(size=(20, 3)),
            y_labeled=rng.integers(0, 2, 20).astype(float),
            x_unlabeled=rng.normal(size=(8, 3)),
        )
        path = save_transductive_npz(tmp_path / "p.npz", problem)
        code = main(["diagnose", str(path)])
        out = capsys.readouterr().out
        assert "graph:" in out
        assert code in (0, 1)  # healthy or warned, but never crashed

    def test_diagnose_flags_disconnected(self, capsys, tmp_path, rng):
        from repro.datasets.io import TransductiveProblem, save_transductive_npz

        problem = TransductiveProblem(
            x_labeled=rng.normal(size=(10, 2)),
            y_labeled=rng.integers(0, 2, 10).astype(float),
            x_unlabeled=rng.normal(size=(4, 2)) + 1000.0,
        )
        path = save_transductive_npz(tmp_path / "far.npz", problem)
        code = main(["diagnose", str(path), "--bandwidth", "0.5"])
        out = capsys.readouterr().out
        assert code == 1
        assert "warnings" in out


class TestArgumentValidation:
    """Regression tests: ``--replicates 0`` used to crash deep inside the
    driver with a traceback; bad values now fail at the parser (exit 2)
    or as a one-line ConfigurationError message from main()."""

    @pytest.mark.parametrize("value", ["0", "-3", "x"])
    def test_replicates_rejected_at_parser(self, capsys, value):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure1", "--replicates", value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--replicates" in err
        assert "Traceback" not in err

    def test_negative_seed_rejected_at_parser(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure1", "--seed", "-1"])
        assert excinfo.value.code == 2
        assert "--seed" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_bad_jobs_rejected_at_parser(self, capsys, value):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure1", "--jobs", value])
        assert excinfo.value.code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_figure5_count_flags_validated(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure5", "--images-per-class", "0"])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_driver_configuration_error_exits_two(self, capsys):
        code = main(["m-growth", "--gamma", "-1", "--replicates", "2", "--seed", "0"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert "gamma must be > 0" in captured.err
        assert "Traceback" not in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_parallel_figure_run(self, capsys):
        code = main(["figure1", "--replicates", "2", "--seed", "0", "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "figure1" in out


class TestTraceReportRobustness:
    def test_empty_trace_file_prints_friendly_message(self, capsys, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        code = main(["trace-report", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "empty trace" in out
        assert "Traceback" not in out

    def test_missing_trace_file_exits_cleanly(self, capsys, tmp_path):
        code = main(["trace-report", str(tmp_path / "nope.jsonl")])
        captured = capsys.readouterr()
        text = (captured.out + captured.err).lower()
        assert code == 2
        assert "no such" in text or "not found" in text
        assert "traceback" not in text

    def test_directory_path_exits_cleanly(self, capsys, tmp_path):
        code = main(["trace-report", str(tmp_path)])
        assert code == 2

    def test_corrupt_json_exits_cleanly(self, capsys, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        code = main(["trace-report", str(path)])
        out = capsys.readouterr().out
        assert code == 2
        assert "Traceback" not in out


def _write_run(tmp_path, run_id, samples_by_name):
    recorder = BenchRecorder(scale="quick", run_id=run_id)
    for name, samples in samples_by_name.items():
        recorder.add(BenchRecord.from_samples(name, samples))
    return recorder.write_run(tmp_path)


class TestBenchVerbs:
    def test_bench_report(self, capsys, tmp_path):
        path = _write_run(tmp_path, "r1", {"solve": [0.1, 0.11, 0.12]})
        code = main(["bench-report", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "solve" in out and "r1" in out

    def test_bench_report_missing_file(self, capsys, tmp_path):
        code = main(["bench-report", str(tmp_path / "gone.json")])
        assert code == 2

    def test_self_compare_exits_zero(self, capsys, tmp_path):
        path = _write_run(tmp_path, "r1", {"solve": [0.1, 0.11, 0.12]})
        code = main(["bench-compare", str(path), str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 regression(s)" in out

    def test_degraded_timing_exits_nonzero(self, capsys, tmp_path):
        old = _write_run(tmp_path / "old", "r1", {"solve": [0.100, 0.101, 0.102]})
        new = _write_run(tmp_path / "new", "r2", {"solve": [0.150, 0.151, 0.152]})
        code = main(["bench-compare", str(old), str(new), "--threshold", "0.15"])
        out = capsys.readouterr().out
        assert code == 1
        assert "regression" in out

    def test_threshold_flag_loosens_gate(self, capsys, tmp_path):
        old = _write_run(tmp_path / "old", "r1", {"solve": [0.100, 0.101, 0.102]})
        new = _write_run(tmp_path / "new", "r2", {"solve": [0.150, 0.151, 0.152]})
        code = main(["bench-compare", str(old), str(new), "--threshold", "0.60"])
        assert code == 0
        capsys.readouterr()

    def test_compare_missing_file_exits_two(self, capsys, tmp_path):
        path = _write_run(tmp_path, "r1", {"solve": [0.1]})
        assert main(["bench-compare", str(path), str(tmp_path / "gone.json")]) == 2


class TestMetricsFlag:
    def test_metrics_dump_written(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        code = main(["toy", "--seed", "0", "--metrics", str(path)])
        assert code == 0
        data = json.loads(path.read_text())
        assert data["schema"] == "repro.metrics/v1"
        assert data["command"] == "toy"
        assert data["environment"]["schema"] == "repro.env/v1"
        assert any(name.startswith("solves.") for name in data["metrics"])
        capsys.readouterr()

    def test_metrics_and_trace_together(self, capsys, tmp_path):
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.jsonl"
        code = main([
            "toy", "--seed", "0",
            "--metrics", str(metrics), "--trace", str(trace),
        ])
        assert code == 0
        assert metrics.exists() and trace.exists()
        capsys.readouterr()

    def test_metrics_written_even_on_failure(self, tmp_path, capsys):
        from repro.datasets.io import TransductiveProblem, save_transductive_npz
        import numpy as np

        rng = np.random.default_rng(0)
        problem = TransductiveProblem(
            x_labeled=rng.normal(size=(10, 2)),
            y_labeled=rng.integers(0, 2, 10).astype(float),
            x_unlabeled=rng.normal(size=(4, 2)) + 1000.0,
        )
        npz = save_transductive_npz(tmp_path / "far.npz", problem)
        path = tmp_path / "metrics.json"
        code = main([
            "diagnose", str(npz), "--bandwidth", "0.5", "--metrics", str(path),
        ])
        assert code == 1  # the command itself failed its health check
        data = json.loads(path.read_text())
        assert data["schema"] == "repro.metrics/v1"
        capsys.readouterr()


class TestBenchCompareMultiRun:
    def _pin_created(self, path, created):
        data = json.loads(path.read_text())
        data["created_unix"] = created
        for record in data["benchmarks"]:
            record["created_unix"] = created
        path.write_text(json.dumps(data))
        return path

    def test_three_runs_judged_oldest_vs_newest(self, capsys, tmp_path):
        runs = []
        for i, base in enumerate([0.100, 0.120, 0.150]):
            path = _write_run(
                tmp_path / f"run{i}", f"r{i}",
                {"solve": [base, base * 1.01, base * 1.02]},
            )
            runs.append(str(self._pin_created(path, 100.0 * (i + 1))))
        code = main(["bench-compare", *runs, "--threshold", "0.15"])
        out = capsys.readouterr().out
        assert code == 1  # 0.150 vs 0.100 regressed even though no adjacent pair did badly
        assert "comparing 3 runs" in out
        assert "regression" in out

    def test_glob_pattern_expanded(self, capsys, tmp_path):
        for i in range(2):
            path = _write_run(
                tmp_path / f"run{i}", f"r{i}", {"solve": [0.1, 0.101, 0.102]}
            )
            self._pin_created(path, 100.0 * (i + 1))
        pattern = str(tmp_path) + "/*/BENCH_*.json"
        code = main(["bench-compare", pattern])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 regression(s)" in out

    def test_single_file_exits_two(self, capsys, tmp_path):
        path = _write_run(tmp_path, "r1", {"solve": [0.1]})
        assert main(["bench-compare", str(path)]) == 2
        assert "at least two" in capsys.readouterr().err

    def test_benchmark_in_one_run_only_never_gates(self, capsys, tmp_path):
        old = _write_run(tmp_path / "old", "r1", {"solve": [0.1, 0.101, 0.102]})
        new = _write_run(
            tmp_path / "new", "r2",
            {"solve": [0.1, 0.101, 0.102], "extra": [0.5, 0.51, 0.52]},
        )
        self._pin_created(old, 100.0)
        self._pin_created(new, 200.0)
        code = main(["bench-compare", str(old), str(new)])
        out = capsys.readouterr().out
        assert code == 0
        assert "extra" in out


class TestTraceReportMergedMemory:
    def test_cross_process_merged_memory_trace(self, capsys, tmp_path):
        """trace-report over a parent trace that adopted worker memory spans.

        This is the artifact shape a ``--jobs N --trace`` run produces:
        worker tracers record with ``track_memory=True``, ship their
        records across the process boundary, and the parent adopts them.
        """
        from repro import obs
        from repro.obs.export import write_jsonl

        parent = obs.RecordingTracer(track_memory=True)
        worker = obs.RecordingTracer(track_memory=True)
        with obs.use_tracer(worker):
            with obs.span("repro.replicate", index=1):
                _ = [0.0] * 50_000
        worker.close()
        with obs.use_tracer(parent):
            with obs.span("repro.replicate", index=0):
                _ = [0.0] * 50_000
        parent.adopt_records(worker.to_records())
        parent.close()
        path = write_jsonl(parent, tmp_path / "merged.jsonl")

        code = main(["trace-report", str(path), "--tree"])
        out = capsys.readouterr().out
        assert code == 0
        # both the locally-recorded and the adopted replicate spans render
        assert out.count("repro.replicate") >= 2
        # and the memory attribution survived the merge
        assert "memory.peak_bytes" in out


class TestProgressFlags:
    def test_parallel_figure_emits_progress(self, capsys, tmp_path):
        jsonl = tmp_path / "progress.jsonl"
        code = main([
            "figure1", "--replicates", "2", "--seed", "0", "--jobs", "2",
            "--progress", "--progress-jsonl", str(jsonl),
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "heartbeat" in captured.err
        assert "replicate 1/2" in captured.err
        events = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert events[0]["type"] == "header"
        assert events[0]["schema"] == "repro.progress/v1"
        heartbeats = [e for e in events if e.get("type") == "heartbeat"]
        assert len(heartbeats) >= 1
        done = [e for e in events if e.get("type") == "replicate"]
        # every task covers replicate indices 0..1 exactly once
        by_task = {}
        for event in done:
            by_task.setdefault(event["task"], []).append(event["index"])
        assert by_task and all(sorted(v) == [0, 1] for v in by_task.values())
        ends = [e for e in events if e.get("type") == "end"]
        assert ends and all(e["status"] == "complete" for e in ends)

    def test_progress_preserves_aggregates_bit_identically(self, capsys, tmp_path):
        plain = tmp_path / "plain.csv"
        with_progress = tmp_path / "progress.csv"
        args = ["consistency", "--replicates", "2", "--seed", "0"]
        assert main([*args, "--csv", str(plain)]) == 0
        assert main([
            *args, "--csv", str(with_progress), "--jobs", "2",
            "--progress-jsonl", str(tmp_path / "p.jsonl"),
        ]) == 0
        capsys.readouterr()
        assert with_progress.read_text() == plain.read_text()


class TestMemoryLeanFlags:
    def test_dtype_policy_and_budget_parsed(self):
        args = build_parser().parse_args(
            ["prop21", "--sweep-backend", "multigrid",
             "--dtype-policy", "float32", "--memory-budget-mb", "512"]
        )
        assert args.dtype_policy == "float32"
        assert args.memory_budget_mb == 512
        defaults = build_parser().parse_args(["lambda-curve"])
        assert defaults.dtype_policy == "float64"
        assert defaults.memory_budget_mb is None

    def test_bad_dtype_policy_rejected_at_parser(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["prop21", "--dtype-policy", "float16"])
        assert "float16" in capsys.readouterr().err

    def test_bad_budget_rejected_at_parser(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["prop21", "--memory-budget-mb", "0"])
        assert ">= 1" in capsys.readouterr().err

    def test_prop21_multigrid_float32(self, capsys):
        code = main([
            "prop21", "--seed", "0",
            "--sweep-backend", "multigrid", "--dtype-policy", "float32",
        ])
        assert code == 0
        assert "Proposition II.1" in capsys.readouterr().out

    def test_budget_within_reports_usage(self, capsys):
        code = main(["prop21", "--seed", "0", "--memory-budget-mb", "512"])
        captured = capsys.readouterr()
        assert code == 0
        assert "Proposition II.1" in captured.out
        assert "prop21: peak" in captured.err and "(ok)" in captured.err

    def test_budget_exceeded_exits_one(self, capsys, monkeypatch):
        import numpy as np

        import repro.experiments.figures as figures
        from repro.experiments.figures.prop21 import Prop21Result

        def hungry_experiment(**kwargs):
            buf = np.ones(4_000_000)  # ~32 MB traced peak, way over 1 MB
            del buf
            return Prop21Result(lambdas=(1.0,), deviations=(0.0,))

        monkeypatch.setattr(figures, "run_prop21_experiment", hungry_experiment)
        code = main(["prop21", "--seed", "0", "--memory-budget-mb", "1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "memory budget exceeded" in captured.err
        assert "traced peak" in captured.err

    def test_budget_composes_with_metrics_flag(self, capsys, tmp_path):
        metrics = tmp_path / "m.json"
        code = main([
            "prop21", "--seed", "0", "--memory-budget-mb", "512",
            "--metrics", str(metrics),
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert metrics.exists()
        assert "(ok)" in captured.err
