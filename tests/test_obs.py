"""Tests for the repro.obs telemetry stack.

Covers span nesting and attribute propagation, metrics-registry
isolation, exporter round-trips, the numeric health probes, the solver
wiring (SolveInfo threading into FitResult), and a guard asserting the
disabled no-op path stays within the overhead budget.
"""

import json
import sys
import time

import numpy as np
import pytest

from repro import obs
from repro.core.hard import solve_hard_criterion
from repro.core.soft import solve_soft_criterion
from repro.datasets.synthetic import make_synthetic_dataset
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.linalg.solvers import SolveInfo, solve_spd
from repro.obs.export import (
    InMemoryExporter,
    load_header,
    load_jsonl,
    render_trace_report,
    render_tree,
    write_jsonl,
)
from repro.obs.probes import condition_estimate, graph_stats


@pytest.fixture()
def problem():
    data = make_synthetic_dataset(40, 20, seed=0)
    bandwidth = paper_bandwidth_rule(40, data.x_labeled.shape[1])
    weights = full_kernel_graph(data.x_all, bandwidth=bandwidth).dense_weights()
    return data, weights


class TestSpans:
    def test_default_tracer_is_noop(self):
        assert not obs.tracing_enabled()
        span = obs.span("anything", key="value")
        assert not span.recording
        with span as inner:
            inner.set_attribute("ignored", 1)
        assert span.attributes == {}

    def test_nesting_builds_a_tree(self):
        tracer = obs.RecordingTracer()
        with obs.use_tracer(tracer):
            with obs.span("outer", level=0):
                with obs.span("inner-a", level=1):
                    with obs.span("leaf", level=2):
                        pass
                with obs.span("inner-b", level=1):
                    pass
            with obs.span("second-root"):
                pass
        assert [root.name for root in tracer.roots] == ["outer", "second-root"]
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == ["inner-a", "inner-b"]
        leaf = outer.children[0].children[0]
        assert leaf.depth == 2
        assert leaf.parent_id == outer.children[0].span_id
        assert [s.name for s in tracer.iter_spans()] == [
            "outer", "inner-a", "leaf", "inner-b", "second-root",
        ]

    def test_attributes_and_durations(self):
        tracer = obs.RecordingTracer()
        with obs.use_tracer(tracer):
            with obs.span("work", size=7) as span:
                span.set_attribute("late", True)
                time.sleep(0.001)
        (root,) = tracer.roots
        assert root.attributes == {"size": 7, "late": True}
        assert root.duration is not None and root.duration > 0

    def test_exception_recorded_and_tracer_restored(self):
        tracer = obs.RecordingTracer()
        with pytest.raises(RuntimeError):
            with obs.use_tracer(tracer):
                with obs.span("doomed"):
                    raise RuntimeError("boom")
        assert not obs.tracing_enabled()
        assert tracer.roots[0].attributes["error"] == "RuntimeError"
        assert tracer.roots[0].duration is not None

    def test_use_tracer_restores_previous(self):
        first = obs.RecordingTracer()
        second = obs.RecordingTracer()
        with obs.use_tracer(first):
            with obs.use_tracer(second):
                assert obs.get_tracer() is second
            assert obs.get_tracer() is first


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = obs.MetricsRegistry()
        registry.counter("events").inc()
        registry.counter("events").inc(2)
        registry.gauge("size").set(42)
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.histogram("latency").observe(value)
        snap = registry.snapshot()
        assert snap["events"]["value"] == 3.0
        assert snap["size"]["value"] == 42.0
        assert snap["latency"]["count"] == 4
        assert snap["latency"]["mean"] == pytest.approx(2.5)
        assert snap["latency"]["min"] == 1.0
        assert snap["latency"]["max"] == 4.0

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            obs.MetricsRegistry().counter("c").inc(-1)

    def test_name_bound_to_one_kind(self):
        registry = obs.MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_histogram_sample_cap_keeps_exact_aggregates(self):
        from repro.obs.metrics import Histogram

        hist = Histogram("h", max_samples=10)
        for value in range(100):
            hist.observe(float(value))
        assert hist.count == 100
        assert len(hist.samples) == 10
        assert hist.min == 0.0 and hist.max == 99.0
        assert hist.mean == pytest.approx(49.5)

    def test_merge_state_respects_sample_cap(self):
        """Regression: merging two near-full histograms used to let the
        sample buffer grow unboundedly past ``max_samples``."""
        from repro.obs.metrics import Histogram

        left = Histogram("h", max_samples=100)
        right = Histogram("h", max_samples=100)
        for value in range(90):
            left.observe(float(value))
        for value in range(90):
            right.observe(float(1000 + value))
        left.merge_state(right.to_state())
        assert left.count == 180
        assert len(left.samples) == 100
        assert left.min == 0.0 and left.max == 1089.0
        assert left.total == pytest.approx(sum(range(90)) + sum(range(1000, 1090)))

    def test_merge_subsample_is_deterministic_and_balanced(self):
        """The capped subsample is seeded by metric name (reproducible)
        and weighted, so an imbalanced merge keeps both sides roughly in
        proportion instead of drowning the small side."""
        from repro.obs.metrics import Histogram

        def merged():
            left = Histogram("imbalanced", max_samples=200)
            right = Histogram("imbalanced", max_samples=200)
            for value in range(190):
                left.observe(0.0)
            for value in range(19_000):
                right.observe(1.0)
            left.merge_state(right.to_state())
            return left

        first, second = merged(), merged()
        assert first.samples == second.samples  # deterministic
        assert len(first.samples) == 200
        small_side = first.samples.count(0.0)
        # left holds 1% of the mass (190 of 19190); its representation
        # in the capped buffer must be of that order, not 50% (the old
        # truncate-left bug) nor 0%
        assert 0 < small_side < 30

    def test_merge_preserves_quantiles_approximately(self):
        from repro.obs.metrics import Histogram

        rng = np.random.default_rng(0)
        left = Histogram("q", max_samples=500)
        right = Histogram("q", max_samples=500)
        a = rng.exponential(size=450)
        b = rng.exponential(size=450)
        for value in a:
            left.observe(float(value))
        for value in b:
            right.observe(float(value))
        left.merge_state(right.to_state())
        pooled = np.concatenate([a, b])
        assert left.snapshot()["p50"] == pytest.approx(
            float(np.quantile(pooled, 0.5)), rel=0.25
        )

    def test_use_registry_isolates_tests(self):
        default = obs.get_registry()
        with obs.use_registry() as registry:
            assert obs.get_registry() is registry
            obs.get_registry().counter("isolated").inc()
            assert "isolated" in registry
        assert obs.get_registry() is default
        assert "isolated" not in default


class TestExporters:
    def _record_trace(self):
        tracer = obs.RecordingTracer()
        with obs.use_tracer(tracer):
            with obs.span("parent", n=3):
                with obs.span("child", residual=1e-9):
                    pass
        return tracer

    def test_jsonl_round_trip(self, tmp_path):
        tracer = self._record_trace()
        path = write_jsonl(tracer, tmp_path / "trace.jsonl")
        loaded = load_jsonl(path)
        assert [r["name"] for r in loaded] == ["parent", "child"]
        assert loaded[0]["parent_id"] is None
        assert loaded[1]["parent_id"] == loaded[0]["span_id"]
        assert loaded[1]["depth"] == 1
        assert loaded[0]["attributes"] == {"n": 3}
        assert loaded[1]["attributes"]["residual"] == pytest.approx(1e-9)
        for record in loaded:
            assert record["duration_s"] >= 0

    def test_jsonl_coerces_numpy_scalars(self, tmp_path):
        tracer = obs.RecordingTracer()
        with obs.use_tracer(tracer):
            with obs.span("np", count=np.int64(3), value=np.float64(0.5)):
                pass
        loaded = load_jsonl(write_jsonl(tracer, tmp_path / "np.jsonl"))
        assert loaded[0]["attributes"] == {"count": 3, "value": 0.5}
        # and the file is plain JSON, line by line
        for line in (tmp_path / "np.jsonl").read_text().splitlines():
            json.loads(line)

    def test_in_memory_exporter(self):
        exporter = InMemoryExporter()
        exporter.export(self._record_trace())
        assert exporter.names() == ["parent", "child"]
        assert exporter.find("child")[0]["attributes"]["residual"] == pytest.approx(1e-9)
        exporter.clear()
        assert exporter.records == []

    def test_render_report_and_tree(self):
        tracer = self._record_trace()
        report = render_trace_report(tracer)
        assert "parent" in report and "child" in report
        assert "span" in report and "mean_s" in report
        tree = render_tree(tracer)
        assert tree.splitlines()[0].startswith("parent")
        assert tree.splitlines()[1].startswith("  child")

    def test_render_report_empty(self):
        assert "empty trace" in render_trace_report([])

    def test_jsonl_header_carries_environment(self, tmp_path):
        path = write_jsonl(self._record_trace(), tmp_path / "trace.jsonl")
        header = load_header(path)
        assert header is not None
        assert header["type"] == "header"
        assert header["schema"] == "repro.trace/v1"
        env = header["environment"]
        assert env["schema"] == "repro.env/v1"
        for key in ("python", "numpy", "scipy", "platform", "cpu_count"):
            assert key in env
        # load_jsonl must skip the header and return spans only
        assert [r["name"] for r in load_jsonl(path)] == ["parent", "child"]

    def test_load_jsonl_tolerates_headerless_files(self, tmp_path):
        # Traces written before the header existed must keep loading.
        path = write_jsonl(self._record_trace(), tmp_path / "old.jsonl", header=False)
        assert load_header(path) is None
        assert [r["name"] for r in load_jsonl(path)] == ["parent", "child"]

    def test_render_report_skips_header_records(self, tmp_path):
        path = write_jsonl(self._record_trace(), tmp_path / "trace.jsonl")
        report = render_trace_report(load_jsonl(path))
        assert "parent" in report and "child" in report


class TestDurableWrites:
    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        from repro.obs.export import atomic_write_text

        path = atomic_write_text(tmp_path / "out.json", '{"a": 1}\n')
        assert path.read_text() == '{"a": 1}\n'
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_jsonl_sink_records_readable_before_close(self, tmp_path):
        from repro.obs.export import JsonlSink

        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            sink.write({"type": "start"})
            sink.write({"type": "end"})
            # durable before close: each write flushed + fsynced
            lines = path.read_text().splitlines()
            assert [json.loads(line)["type"] for line in lines] == ["start", "end"]

    def test_load_jsonl_skips_trailing_partial_line(self, tmp_path):
        from repro.obs.export import PartialArtifactWarning

        path = write_jsonl(self._record_trace(), tmp_path / "trace.jsonl")
        # simulate a process killed mid-write: truncate the last line
        text = path.read_text()
        path.write_text(text[: len(text) - 20])
        with pytest.warns(PartialArtifactWarning, match="partial"):
            records = load_jsonl(path)
        assert [r["name"] for r in records] == ["parent"]

    def test_load_jsonl_still_raises_on_mid_file_corruption(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "a"}\nnot json\n{"name": "b"}\n')
        with pytest.raises(json.JSONDecodeError):
            load_jsonl(path)

    def _record_trace(self):
        tracer = obs.RecordingTracer()
        with obs.use_tracer(tracer):
            with obs.span("parent", n=3):
                with obs.span("child", residual=1e-9):
                    pass
        return tracer


class TestMemorySpans:
    def test_disabled_tracking_never_touches_tracemalloc(self):
        # Neither the no-op path nor a plain RecordingTracer may import
        # (let alone start) tracemalloc: the opt-out path must stay free.
        saved = sys.modules.pop("tracemalloc", None)
        try:
            with obs.span("noop"):
                pass
            tracer = obs.RecordingTracer()
            with obs.use_tracer(tracer):
                with obs.span("work", n=3):
                    pass
            tracer.close()
            assert "tracemalloc" not in sys.modules
        finally:
            if saved is not None:
                sys.modules["tracemalloc"] = saved
        assert "memory.peak_bytes" not in tracer.roots[0].attributes

    def test_memory_attributes_recorded_when_opted_in(self):
        import tracemalloc

        tracer = obs.RecordingTracer(track_memory=True)
        try:
            assert tracemalloc.is_tracing()
            with obs.use_tracer(tracer):
                with obs.span("alloc"):
                    block = np.ones(250_000)  # ~2 MB
                    del block
        finally:
            tracer.close()
        assert not tracemalloc.is_tracing()
        (root,) = tracer.roots
        assert root.attributes["memory.peak_bytes"] >= 1_900_000
        # the allocation was freed inside the span
        assert root.attributes["memory.net_bytes"] < 500_000

    def test_nested_peaks_are_attributed_per_span(self):
        tracer = obs.RecordingTracer(track_memory=True)
        try:
            with obs.use_tracer(tracer):
                with obs.span("outer"):
                    own = np.ones(1_000_000)  # ~8 MB held across the child
                    with obs.span("inner"):
                        tmp = np.ones(250_000)  # ~2 MB transient
                        del tmp
                    del own
        finally:
            tracer.close()
        (outer,) = tracer.roots
        (inner,) = outer.children
        # inner's peak covers only its own transient, not outer's 8 MB
        assert 1_900_000 <= inner.attributes["memory.peak_bytes"] <= 5_000_000
        # outer's peak includes its own allocation
        assert outer.attributes["memory.peak_bytes"] >= 7_500_000

    def test_close_is_idempotent_and_leaves_foreign_tracing_alone(self):
        import tracemalloc

        tracer = obs.RecordingTracer(track_memory=True)
        tracer.close()
        tracer.close()
        assert not tracemalloc.is_tracing()

        tracemalloc.start()
        try:
            nested = obs.RecordingTracer(track_memory=True)
            nested.close()
            # it did not own the trace, so it must not stop it
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()


class TestProbes:
    def test_condition_exact_on_small_spd(self):
        diag = np.diag([1.0, 10.0, 100.0])
        estimate, how = condition_estimate(diag)
        assert how == "exact"
        assert estimate == pytest.approx(100.0, rel=1e-8)

    def test_condition_power_iteration_on_large_spd(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(1.0, 50.0, size=600)
        matrix = np.diag(values)
        estimate, how = condition_estimate(matrix)
        assert how == "power_iteration"
        true_cond = values.max() / values.min()
        # power iteration on a clustered spectrum is only an
        # order-of-magnitude estimate — that is all regime diagnostics need
        assert true_cond / 5 < estimate < true_cond * 5

    def test_graph_stats(self):
        weights = np.array(
            [
                [1.0, 0.5, 0.0, 0.0],
                [0.5, 1.0, 0.0, 0.0],
                [0.0, 0.0, 1.0, 0.2],
                [0.0, 0.0, 0.2, 1.0],
            ]
        )
        stats = graph_stats(weights, n_labeled=2)
        assert stats["n_vertices"] == 4
        assert stats["n_components"] == 2
        assert stats["degree_min"] == pytest.approx(1.2)
        assert stats["degree_max"] == pytest.approx(1.5)
        assert stats["isolated_vertices"] == 0
        assert stats["labeled_mass_min"] == 0.0  # unlabeled block unreachable

    def test_probes_are_noops_on_noop_span(self, problem):
        from repro.obs import probes

        data, weights = problem
        span = obs.span("noop")
        # must not raise and must not compute anything observable
        probes.record_graph_stats(span, weights, data.y_labeled.shape[0])
        probes.record_spd_system(span, weights)
        probes.record_solve_info(span, None)
        assert span.attributes == {}


class TestSolverWiring:
    def test_cg_solve_info_threaded_into_fit_result(self, problem):
        data, weights = problem
        fit = solve_hard_criterion(weights, data.y_labeled, method="cg")
        info = fit.solve_info
        assert info is not None
        assert info.method == "cg"
        assert info.converged
        assert info.iterations > 0
        assert info.final_residual < 1e-6
        assert info.size == fit.n_unlabeled

    def test_direct_solve_info(self, problem):
        data, weights = problem
        fit = solve_hard_criterion(weights, data.y_labeled, method="direct")
        assert fit.solve_info.method in ("cholesky", "lu")
        assert fit.solve_info.iterations == 0
        assert fit.solve_info.converged

    def test_soft_schur_and_full_carry_solve_info(self, problem):
        data, weights = problem
        schur = solve_soft_criterion(weights, data.y_labeled, 0.1, method="schur")
        assert schur.solve_info.method == "lu"
        assert schur.solve_info.size == schur.n_unlabeled
        full = solve_soft_criterion(weights, data.y_labeled, 0.1, method="full")
        assert full.solve_info.method in ("cholesky", "lu")
        assert full.solve_info.size == weights.shape[0]
        at_zero = solve_soft_criterion(weights, data.y_labeled, 0.0, solver="cg")
        assert at_zero.solve_info.method == "cg"
        assert at_zero.solve_info.iterations > 0

    def test_solve_spd_return_info_flag(self):
        a = np.diag([2.0, 3.0, 4.0])
        b = np.ones(3)
        plain = solve_spd(a, b, method="cg")
        assert isinstance(plain, np.ndarray)
        x, info = solve_spd(a, b, method="cg", return_info=True)
        np.testing.assert_allclose(x, plain)
        assert isinstance(info, SolveInfo)
        assert info.converged and info.iterations >= 1

    def test_traced_solve_records_health_attributes(self, problem):
        data, weights = problem
        tracer = obs.RecordingTracer()
        with obs.use_tracer(tracer):
            solve_hard_criterion(weights, data.y_labeled, method="cg")
        names = [s.name for s in tracer.iter_spans()]
        assert "repro.solve_hard" in names and "repro.linalg.cg" in names
        (hard,) = [s for s in tracer.iter_spans() if s.name == "repro.solve_hard"]
        attrs = hard.attributes
        assert attrs["solver.iterations"] > 0
        assert attrs["solver.converged"] is True
        assert attrs["system.condition_estimate"] > 1.0
        assert attrs["graph.degree_min"] > 0
        assert attrs["graph.n_components"] == 1

    def test_replicate_spans_in_runner(self):
        from repro.experiments.runner import run_replicates

        tracer = obs.RecordingTracer()
        with obs.use_tracer(tracer):
            run_replicates(
                lambda rng: {"value": float(rng.normal())},
                n_replicates=3,
                seed=0,
            )
        replicates = [s for s in tracer.iter_spans() if s.name == "repro.replicate"]
        assert [s.attributes["index"] for s in replicates] == [0, 1, 2]
        assert all("metric.value" in s.attributes for s in replicates)


class TestStopwatchIntegration:
    def test_stopwatch_emits_spans_when_tracing(self):
        from repro.utils.timing import Stopwatch

        watch = Stopwatch()
        tracer = obs.RecordingTracer()
        with obs.use_tracer(tracer):
            with watch.measure("solve"):
                pass
        assert watch.count("solve") == 1
        assert [s.name for s in tracer.iter_spans()] == ["stopwatch.solve"]

    def test_fit_power_law_filters_zero_timings(self):
        from repro.utils.timing import fit_power_law

        sizes = [10.0, 20.0, 40.0, 80.0]
        times = [0.0, 2.0 * 20.0**3, 2.0 * 40.0**3, 2.0 * 80.0**3]
        with pytest.warns(RuntimeWarning, match="non-positive timing"):
            a, b = fit_power_law(sizes, times)
        assert b == pytest.approx(3.0, abs=1e-9)
        assert a == pytest.approx(2.0, rel=1e-9)

    def test_fit_power_law_still_rejects_too_few_survivors(self):
        from repro.utils.timing import fit_power_law

        with pytest.warns(RuntimeWarning):
            with pytest.raises(ValueError):
                fit_power_law([1.0, 2.0], [0.0, 1.0])


class TestNoopOverheadGuard:
    def test_noop_span_overhead_under_budget(self, problem):
        """Disabled tracing must add <5% to a small solve_hard_criterion.

        Replays the exact telemetry sequence a direct hard solve executes
        (span open/close, tracing-enabled check, SolveInfo construction,
        probe no-op, two metric updates) and compares its per-call cost
        against the per-solve wall clock, using best-of-several minima so
        scheduler noise cannot fail the build spuriously.
        """
        from repro.obs import probes

        data, weights = problem
        assert not obs.tracing_enabled()

        def best_of(fn, repeats, rounds=7):
            best = float("inf")
            for _ in range(rounds):
                start = time.perf_counter()
                for _ in range(repeats):
                    fn()
                best = min(best, (time.perf_counter() - start) / repeats)
            return best

        solve = lambda: solve_hard_criterion(  # noqa: E731
            weights, data.y_labeled, method="direct", check_reachability=False
        )
        per_solve = best_of(solve, repeats=10)

        def telemetry_sequence():
            with obs.span("repro.solve_hard", n=40, m=20, method="direct") as span:
                obs.tracing_enabled()
                info = SolveInfo(method="cholesky", size=20)
                probes.record_solve_info(span, info)
                registry = obs.get_registry()
                registry.counter("solves.hard").inc()
                registry.histogram("solves.hard.system_size").observe(20)

        per_call = best_of(telemetry_sequence, repeats=2000)
        assert per_call < 0.05 * per_solve, (
            f"noop telemetry overhead {per_call * 1e6:.2f}us exceeds 5% of "
            f"per-solve time {per_solve * 1e6:.1f}us"
        )
