"""Tests for the ablation drivers (trimmed sizes)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.ablations import (
    run_bandwidth_ablation,
    run_graph_ablation,
    run_kernel_ablation,
    run_solver_ablation,
)


class TestKernelAblation:
    def test_structure(self):
        result = run_kernel_ablation(
            kernels=("gaussian", "boxcar"),
            n_labeled=40, n_unlabeled=10, n_replicates=3, seed=0,
        )
        assert result.x_values == ("gaussian", "boxcar")
        assert result.means.shape == (1, 2)
        assert np.all(result.means > 0)

    def test_compact_kernels_competitive(self):
        """Compactly-supported kernels should be in the same RMSE ballpark
        as the paper's Gaussian (not degenerate)."""
        result = run_kernel_ablation(
            kernels=("gaussian", "epanechnikov"),
            n_labeled=80, n_unlabeled=15, n_replicates=10, seed=1,
        )
        gaussian, epanechnikov = result.means[0]
        assert epanechnikov < 2.0 * gaussian


class TestBandwidthAblation:
    def test_structure(self):
        result = run_bandwidth_ablation(
            rules=("paper", "median"),
            n_labeled=40, n_unlabeled=10, n_replicates=3, seed=0,
        )
        assert result.x_values == ("paper", "median")
        assert np.all(result.means > 0)

    def test_unknown_rule_raises(self):
        with pytest.raises(ConfigurationError):
            run_bandwidth_ablation(rules=("oracle",), n_replicates=1)


class TestGraphAblation:
    def test_structure(self):
        result = run_graph_ablation(
            constructions=("full", "knn"),
            n_labeled=40, n_unlabeled=10, knn_k=15, n_replicates=3, seed=0,
        )
        assert result.x_values == ("full", "knn")
        assert np.all(result.means > 0)

    def test_unknown_construction_raises(self):
        with pytest.raises(ConfigurationError):
            run_graph_ablation(constructions=("delaunay",), n_replicates=1)


class TestSolverAblation:
    def test_all_backends_agree_with_direct(self):
        result = run_solver_ablation(
            methods=("direct", "cg", "jacobi", "gauss_seidel", "propagation"),
            n_labeled=60, n_unlabeled=20, repeats=1, seed=0,
        )
        assert result.max_deviation[0] == 0.0  # direct vs itself
        assert all(dev < 1e-6 for dev in result.max_deviation)
        assert all(sec > 0 for sec in result.seconds)

    def test_rows_align_with_headers(self):
        result = run_solver_ablation(
            methods=("direct", "cg"), n_labeled=40, n_unlabeled=10, repeats=1, seed=0
        )
        rows = result.to_rows()
        assert len(rows) == 2
        assert len(rows[0]) == len(result.headers())
