"""Tests for live progress telemetry (repro.obs.progress)."""

import io
import json

import pytest

from repro import obs
from repro.experiments.runner import run_replicates
from repro.obs.export import load_jsonl
from repro.obs.progress import (
    PROGRESS_SCHEMA,
    NullProgress,
    ProgressEmitter,
    get_progress,
    progress_enabled,
    use_progress,
)


def _metric(rng):
    return {"value": float(rng.normal())}


def _events(path):
    return [r for r in load_jsonl(path) if "type" in r]


class TestEmitterBasics:
    def test_requires_a_sink(self):
        with pytest.raises(ValueError, match="sink"):
            ProgressEmitter()

    def test_header_carries_provenance(self, tmp_path):
        path = tmp_path / "p.jsonl"
        emitter = ProgressEmitter(jsonl_path=path, run_id="r1")
        emitter.close()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["type"] == "header"
        assert header["schema"] == PROGRESS_SCHEMA
        assert header["run_id"] == "r1"
        assert header["environment"]["schema"] == "repro.env/v1"

    def test_task_lifecycle_event_stream(self, tmp_path):
        path = tmp_path / "p.jsonl"
        emitter = ProgressEmitter(jsonl_path=path, run_id="r1")
        with emitter.task("work", total=2) as task:
            task.replicate_done(0)
            task.replicate_done(1)
        emitter.close()
        events = _events(path)
        assert [e["type"] for e in events] == [
            "start", "heartbeat", "replicate", "replicate", "end",
        ]
        assert events[0]["total"] == 2
        assert [e["index"] for e in events if e["type"] == "replicate"] == [0, 1]
        assert events[-1]["status"] == "complete"
        # seq is monotone so interleaved sinks stay ordered
        assert [e["seq"] for e in events] == sorted(e["seq"] for e in events)

    def test_at_least_one_heartbeat_even_for_instant_tasks(self, tmp_path):
        path = tmp_path / "p.jsonl"
        emitter = ProgressEmitter(jsonl_path=path, heartbeat_interval=None)
        with emitter.task("instant", total=1) as task:
            task.replicate_done(0)
        emitter.close()
        assert sum(e["type"] == "heartbeat" for e in _events(path)) >= 1

    def test_interrupted_task_marked(self, tmp_path):
        path = tmp_path / "p.jsonl"
        emitter = ProgressEmitter(jsonl_path=path)
        with pytest.raises(KeyboardInterrupt):
            with emitter.task("work", total=5) as task:
                task.replicate_done(0)
                raise KeyboardInterrupt
        emitter.close()
        end = _events(path)[-1]
        assert end["type"] == "end"
        assert end["status"] == "interrupted"
        assert end["error"] == "KeyboardInterrupt"
        assert end["completed"] == 1

    def test_stderr_lines_human_readable(self):
        stream = io.StringIO()
        emitter = ProgressEmitter(stream=stream, run_id="r1")
        with emitter.task("fig", total=1, n_jobs=2) as task:
            task.replicate_done(0)
        emitter.close()
        text = stream.getvalue()
        assert "[fig] start: 1 replicate(s), 2 job(s)" in text
        assert "replicate 1/1 (index 0)" in text
        assert "complete: 1/1" in text

    def test_stream_readable_before_close(self, tmp_path):
        """Every event is fsynced: a killed process leaves a parseable file."""
        path = tmp_path / "p.jsonl"
        emitter = ProgressEmitter(jsonl_path=path)
        with emitter.task("work", total=3) as task:
            task.replicate_done(0)
            # read back mid-run, before close(): all events must be durable
            events = _events(path)
        assert [e["type"] for e in events] == ["start", "heartbeat", "replicate"]
        emitter.close()


class TestAmbientEmitter:
    def test_default_is_null(self):
        assert isinstance(get_progress(), NullProgress)
        assert not progress_enabled()

    def test_use_progress_installs_and_restores(self, tmp_path):
        emitter = ProgressEmitter(jsonl_path=tmp_path / "p.jsonl")
        with use_progress(emitter):
            assert get_progress() is emitter
            assert progress_enabled()
        assert isinstance(get_progress(), NullProgress)
        emitter.close()

    def test_exported_from_obs_namespace(self):
        for name in ("ProgressEmitter", "NullProgress", "use_progress",
                     "get_progress", "set_progress", "progress_enabled"):
            assert hasattr(obs, name)


class TestRunnerIntegration:
    def test_serial_run_emits_per_replicate_events(self, tmp_path):
        path = tmp_path / "p.jsonl"
        emitter = ProgressEmitter(jsonl_path=path)
        run_replicates(
            _metric, n_replicates=4, seed=0, label="serial", progress=emitter
        )
        emitter.close()
        events = _events(path)
        done = [e for e in events if e["type"] == "replicate"]
        assert [e["index"] for e in done] == [0, 1, 2, 3]
        assert all(e["task"] == "serial" for e in done)
        assert events[-1]["status"] == "complete"

    def test_parallel_run_covers_every_index(self, tmp_path):
        path = tmp_path / "p.jsonl"
        emitter = ProgressEmitter(jsonl_path=path)
        run_replicates(
            _metric, n_replicates=6, seed=0, n_jobs=2, label="par",
            progress=emitter,
        )
        emitter.close()
        done = [e for e in _events(path) if e["type"] == "replicate"]
        # parallel completion order is nondeterministic but coverage is total
        assert sorted(e["index"] for e in done) == [0, 1, 2, 3, 4, 5]
        assert done[-1]["completed"] == 6

    def test_ambient_emitter_picked_up(self, tmp_path):
        path = tmp_path / "p.jsonl"
        emitter = ProgressEmitter(jsonl_path=path)
        with use_progress(emitter):
            run_replicates(_metric, n_replicates=2, seed=0)
        emitter.close()
        events = _events(path)
        assert sum(e["type"] == "replicate" for e in events) == 2
        # label defaults to the replicate callable's name
        assert events[0]["task"] == "_metric"

    def test_progress_never_changes_aggregates(self, tmp_path):
        bare = run_replicates(_metric, n_replicates=8, seed=42)
        emitter = ProgressEmitter(jsonl_path=tmp_path / "s.jsonl")
        serial = run_replicates(
            _metric, n_replicates=8, seed=42, progress=emitter
        )
        emitter.close()
        emitter = ProgressEmitter(jsonl_path=tmp_path / "p.jsonl")
        parallel = run_replicates(
            _metric, n_replicates=8, seed=42, n_jobs=2, progress=emitter
        )
        emitter.close()
        assert serial.values == bare.values
        assert parallel.values == bare.values
        assert parallel.means == bare.means

    def test_null_progress_costs_nothing_and_works(self):
        summary = run_replicates(_metric, n_replicates=3, seed=1)
        assert summary.n_replicates == 3

    def test_driver_threads_progress_through(self, tmp_path):
        from repro.experiments.figures import run_figure1

        path = tmp_path / "fig1.jsonl"
        emitter = ProgressEmitter(jsonl_path=path)
        run_figure1(
            n_values=(10, 30), n_replicates=2, seed=0, progress=emitter
        )
        emitter.close()
        tasks = {e["task"] for e in _events(path) if e["type"] == "start"}
        assert tasks == {"figure1[n=10]", "figure1[n=30]"}
