"""Property-based tests for calibration and threshold selection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics.classification import roc_curve
from repro.metrics.isotonic import IsotonicCalibrator, pav_isotonic
from repro.metrics.thresholds import best_f1_threshold, youden_threshold

finite_arrays = hnp.arrays(
    np.float64,
    st.integers(3, 40),
    elements=st.floats(-100, 100, allow_nan=False),
)


def _binary_labels(rng, length):
    y = rng.integers(0, 2, length).astype(float)
    y[0], y[1] = 0.0, 1.0
    return y


class TestPavProperties:
    @given(values=finite_arrays)
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, values):
        once = pav_isotonic(values)
        twice = pav_isotonic(once)
        np.testing.assert_allclose(twice, once, atol=1e-10)

    @given(values=finite_arrays)
    @settings(max_examples=60, deadline=None)
    def test_monotone_output(self, values):
        fitted = pav_isotonic(values)
        assert np.all(np.diff(fitted) >= -1e-10)

    @given(values=finite_arrays)
    @settings(max_examples=60, deadline=None)
    def test_mean_preserving(self, values):
        fitted = pav_isotonic(values)
        assert fitted.mean() == pytest.approx(values.mean(), abs=1e-8)

    @given(values=finite_arrays)
    @settings(max_examples=60, deadline=None)
    def test_range_bounded_by_input(self, values):
        fitted = pav_isotonic(values)
        assert fitted.min() >= values.min() - 1e-10
        assert fitted.max() <= values.max() + 1e-10

    @given(values=finite_arrays, shift=st.floats(-50, 50))
    @settings(max_examples=40, deadline=None)
    def test_translation_equivariance(self, values, shift):
        np.testing.assert_allclose(
            pav_isotonic(values + shift), pav_isotonic(values) + shift, atol=1e-8
        )


class TestCalibratorProperties:
    @given(seed=st.integers(0, 2**31 - 1), length=st.integers(6, 60))
    @settings(max_examples=40, deadline=None)
    def test_transform_always_monotone(self, seed, length):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=length)
        y = _binary_labels(rng, length)
        calibrator = IsotonicCalibrator().fit(scores, y)
        grid = np.linspace(scores.min() - 1, scores.max() + 1, 50)
        out = calibrator.transform(grid)
        assert np.all(np.diff(out) >= -1e-12)

    @given(seed=st.integers(0, 2**31 - 1), length=st.integers(6, 60))
    @settings(max_examples=40, deadline=None)
    def test_outputs_in_outcome_range(self, seed, length):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=length)
        y = _binary_labels(rng, length)
        calibrator = IsotonicCalibrator().fit(scores, y)
        out = calibrator.transform(rng.normal(size=30))
        assert out.min() >= 0.0 - 1e-12
        assert out.max() <= 1.0 + 1e-12


class TestThresholdProperties:
    @given(seed=st.integers(0, 2**31 - 1), length=st.integers(4, 50))
    @settings(max_examples=50, deadline=None)
    def test_youden_threshold_is_achievable(self, seed, length):
        """The returned threshold appears on the ROC threshold set."""
        rng = np.random.default_rng(seed)
        scores = np.round(rng.normal(size=length), 2)
        y = _binary_labels(rng, length)
        threshold = youden_threshold(y, scores)
        _, _, thresholds = roc_curve(y, scores)
        assert threshold in thresholds

    @given(seed=st.integers(0, 2**31 - 1), length=st.integers(4, 50))
    @settings(max_examples=50, deadline=None)
    def test_youden_never_worse_than_half_threshold(self, seed, length):
        """Youden's J at the tuned threshold >= J at a fixed 0.5."""
        rng = np.random.default_rng(seed)
        scores = rng.random(length)
        y = _binary_labels(rng, length)
        fpr, tpr, thresholds = roc_curve(y, scores)
        j_values = tpr - fpr
        tuned = youden_threshold(y, scores)
        tuned_j = float(j_values[np.flatnonzero(thresholds == tuned)[0]])
        half_predictions = (scores >= 0.5).astype(float)
        from repro.metrics.classification import sensitivity_specificity

        sens, spec = sensitivity_specificity(y, half_predictions)
        assert tuned_j >= (sens + spec - 1.0) - 1e-9

    @given(seed=st.integers(0, 2**31 - 1), length=st.integers(4, 50))
    @settings(max_examples=50, deadline=None)
    def test_best_f1_never_worse_than_half_threshold(self, seed, length):
        from repro.metrics.probabilistic import precision_recall_f1

        rng = np.random.default_rng(seed)
        scores = rng.random(length)
        y = _binary_labels(rng, length)
        tuned = best_f1_threshold(y, scores)
        _, _, tuned_f1 = precision_recall_f1(y, (scores >= tuned).astype(float))
        _, _, half_f1 = precision_recall_f1(y, (scores >= 0.5).astype(float))
        assert tuned_f1 >= half_f1 - 1e-9
