"""Failure-injection tests: broken inputs must fail loudly and helpfully.

Every scenario here is a realistic misuse — disconnected graphs, NaN
inputs, singular systems, shape mismatches — and the contract is that
the library raises one of its own exception types with an actionable
message, never a bare numpy error or a silent wrong answer.
"""

import numpy as np
import pytest

from repro.core.estimators import GraphSSLRegressor, HardLabelPropagation
from repro.core.hard import solve_hard_criterion
from repro.core.propagation import propagate_labels
from repro.core.soft import solve_soft_criterion
from repro.exceptions import (
    ConvergenceError,
    DataValidationError,
    DisconnectedGraphError,
    GraphStructureError,
    ReproError,
    SingularSystemError,
)


class TestDisconnectedGraphs:
    def test_hard_criterion_names_orphans(self, disconnected_weights):
        with pytest.raises(DisconnectedGraphError) as excinfo:
            solve_hard_criterion(disconnected_weights, np.array([1.0, 0.0]))
        message = str(excinfo.value)
        assert "3" in message and "4" in message
        assert "bandwidth" in message

    def test_estimator_with_tiny_bandwidth_raises_disconnected(self, rng):
        """A bandwidth far too small for the data disconnects the graph
        once weights underflow to zero."""
        x_labeled = rng.normal(size=(10, 2))
        x_unlabeled = rng.normal(size=(5, 2)) + 500.0  # far away
        model = GraphSSLRegressor(bandwidth=1e-3)
        with pytest.raises(DisconnectedGraphError):
            model.fit(x_labeled, rng.normal(size=10), x_unlabeled)

    def test_propagation_same_contract(self, disconnected_weights):
        with pytest.raises(DisconnectedGraphError):
            propagate_labels(disconnected_weights, np.array([1.0, 0.0]))


class TestNanAndInfInputs:
    def test_nan_in_weights(self, tiny_weights):
        bad = tiny_weights.copy()
        bad[0, 1] = bad[1, 0] = np.nan
        with pytest.raises(DataValidationError, match="non-finite"):
            solve_hard_criterion(bad, np.array([1.0, 0.0]))

    def test_nan_in_labels(self, tiny_weights):
        with pytest.raises(DataValidationError, match="non-finite"):
            solve_hard_criterion(tiny_weights, np.array([1.0, np.nan]))

    def test_inf_in_estimator_inputs(self, rng):
        x = rng.normal(size=(10, 2))
        x[3, 1] = np.inf
        model = HardLabelPropagation(bandwidth=1.0)
        with pytest.raises(DataValidationError):
            model.fit(x, rng.normal(size=10), rng.normal(size=(5, 2)))


class TestStructuralMisuse:
    def test_negative_weights_rejected(self):
        w = np.array([[0.0, -0.5], [-0.5, 0.0]])
        with pytest.raises(GraphStructureError, match="negative"):
            solve_hard_criterion(w, np.array([1.0]))

    def test_asymmetric_weights_rejected(self, tiny_weights):
        bad = tiny_weights.copy()
        bad[0, 1] = 0.9
        with pytest.raises(GraphStructureError, match="symmetric"):
            solve_hard_criterion(bad, np.array([1.0, 0.0]))

    def test_non_square_weights_rejected(self):
        with pytest.raises(DataValidationError, match="square"):
            solve_hard_criterion(np.ones((3, 4)), np.array([1.0]))

    def test_labels_longer_than_graph(self, tiny_weights):
        with pytest.raises(DataValidationError, match="vertices"):
            solve_soft_criterion(tiny_weights, np.ones(10), 0.1)

    def test_2d_labels_rejected(self, tiny_weights):
        with pytest.raises(DataValidationError, match="1-d"):
            solve_hard_criterion(tiny_weights, np.ones((2, 1)))


class TestSingularAndNonConvergent:
    def test_singular_system_is_library_error(self):
        """An all-zero-degree unlabeled block without the reachability
        check still raises a ReproError subtype, not a numpy error."""
        w = np.zeros((3, 3))
        w[0, 1] = w[1, 0] = 1.0
        with pytest.raises(ReproError):
            solve_hard_criterion(w, np.array([1.0]), check_reachability=False)

    def test_iteration_budget_exhaustion_reports_residual(self, small_problem):
        data, weights, _ = small_problem
        with pytest.raises(ConvergenceError) as excinfo:
            propagate_labels(weights, data.y_labeled, tol=1e-16, max_iter=3)
        assert excinfo.value.iterations == 3
        assert np.isfinite(excinfo.value.residual)

    def test_singular_error_type_hierarchy(self):
        """SingularSystemError doubles as ValueError for generic callers."""
        assert issubclass(SingularSystemError, ValueError)
        assert issubclass(SingularSystemError, ReproError)
        assert issubclass(DisconnectedGraphError, ReproError)


class TestAllExceptionsAreCatchable:
    def test_every_failure_path_caught_by_repro_error(self, disconnected_weights, tiny_weights):
        failures = [
            lambda: solve_hard_criterion(disconnected_weights, np.array([1.0, 0.0])),
            lambda: solve_hard_criterion(tiny_weights, np.array([np.nan, 0.0])),
            lambda: solve_soft_criterion(tiny_weights, np.array([1.0, 0.0]), -1.0),
            lambda: GraphSSLRegressor(bandwidth="bogus").fit(
                np.zeros((3, 2)), np.zeros(3), np.zeros((2, 2))
            ),
        ]
        for failure in failures:
            with pytest.raises(ReproError):
                failure()
