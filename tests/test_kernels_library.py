"""Unit tests for the concrete kernels in repro.kernels.library."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.kernels.library import (
    BoxcarKernel,
    CauchyKernel,
    CosineKernel,
    EpanechnikovKernel,
    GaussianKernel,
    TriangularKernel,
    TricubeKernel,
    TruncatedGaussianKernel,
    kernel_by_name,
)

ALL_KERNELS = [
    GaussianKernel(),
    TruncatedGaussianKernel(),
    BoxcarKernel(),
    EpanechnikovKernel(),
    TriangularKernel(),
    TricubeKernel(),
    CosineKernel(),
    CauchyKernel(),
]

COMPACT_KERNELS = [k for k in ALL_KERNELS if math.isfinite(k.support_radius)]


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
class TestKernelContracts:
    """Contracts every kernel must satisfy."""

    def test_profile_at_zero_is_positive(self, kernel):
        assert kernel.profile(np.array([0.0]))[0] > 0

    def test_profile_bounded_by_upper_bound(self, kernel):
        radii = np.linspace(0.0, 10.0, 500)
        values = kernel.profile(radii)
        assert np.all(values <= kernel.upper_bound + 1e-12)

    def test_profile_non_negative(self, kernel):
        radii = np.linspace(0.0, 10.0, 500)
        assert np.all(kernel.profile(radii) >= 0.0)

    def test_profile_non_increasing(self, kernel):
        radii = np.linspace(0.0, 5.0, 200)
        values = kernel.profile(radii)
        assert np.all(np.diff(values) <= 1e-12)

    def test_ball_lower_bound_is_valid(self, kernel):
        beta, delta = kernel.ball_lower_bound
        radii = np.linspace(0.0, delta, 100)
        assert np.all(kernel.profile(radii) >= beta - 1e-12)

    def test_vanishes_outside_support(self, kernel):
        if not math.isfinite(kernel.support_radius):
            pytest.skip("full-support kernel")
        radii = np.array([kernel.support_radius + 0.01, kernel.support_radius + 5.0])
        np.testing.assert_array_equal(kernel.profile(radii), np.zeros(2))

    def test_positive_inside_support(self, kernel):
        edge = min(kernel.support_radius, 10.0)
        radii = np.linspace(0.0, edge * 0.99, 50)
        assert np.all(kernel.profile(radii) > 0.0)


class TestSpecificValues:
    def test_gaussian_value(self):
        assert GaussianKernel().profile(np.array([1.0]))[0] == pytest.approx(math.exp(-1))

    def test_truncated_gaussian_cut(self):
        k = TruncatedGaussianKernel(cutoff=2.0)
        assert k.profile(np.array([1.9]))[0] == pytest.approx(math.exp(-1.9**2))
        assert k.profile(np.array([2.1]))[0] == 0.0

    def test_truncated_gaussian_rejects_bad_cutoff(self):
        from repro.exceptions import DataValidationError

        with pytest.raises(DataValidationError):
            TruncatedGaussianKernel(cutoff=0.0)

    def test_boxcar_is_indicator(self):
        values = BoxcarKernel().profile(np.array([0.0, 0.5, 1.0, 1.0001]))
        np.testing.assert_array_equal(values, [1.0, 1.0, 1.0, 0.0])

    def test_epanechnikov_value(self):
        assert EpanechnikovKernel().profile(np.array([0.5]))[0] == pytest.approx(0.75)

    def test_triangular_value(self):
        assert TriangularKernel().profile(np.array([0.25]))[0] == pytest.approx(0.75)

    def test_tricube_value(self):
        assert TricubeKernel().profile(np.array([0.5]))[0] == pytest.approx(
            (1 - 0.125) ** 3
        )

    def test_cosine_value(self):
        assert CosineKernel().profile(np.array([0.5]))[0] == pytest.approx(
            math.cos(math.pi / 4)
        )

    def test_cauchy_value(self):
        assert CauchyKernel().profile(np.array([1.0]))[0] == pytest.approx(0.5)

    def test_cauchy_not_compact(self):
        assert not CauchyKernel().theorem_conditions().compact_support


class TestRegistry:
    def test_every_kernel_reachable_by_name(self):
        for kernel in ALL_KERNELS:
            assert kernel_by_name(kernel.name).name == kernel.name

    def test_kwargs_forwarded(self):
        k = kernel_by_name("truncated_gaussian", cutoff=5.0)
        assert k.support_radius == 5.0

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(ConfigurationError, match="gaussian"):
            kernel_by_name("nope")
