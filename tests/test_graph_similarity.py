"""Unit tests for repro.graph.similarity."""

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import ConfigurationError, GraphStructureError
from repro.graph.similarity import (
    SimilarityGraph,
    build_similarity_graph,
    epsilon_graph,
    full_kernel_graph,
    knn_graph,
)
from repro.kernels.library import BoxcarKernel, GaussianKernel


class TestFullKernelGraph:
    def test_matches_direct_gram(self, rng):
        x = rng.normal(size=(10, 3))
        graph = full_kernel_graph(x, bandwidth=0.8)
        expected = GaussianKernel().gram(x, bandwidth=0.8)
        np.testing.assert_allclose(graph.dense_weights(), expected)

    def test_metadata_recorded(self, rng):
        x = rng.normal(size=(5, 2))
        graph = full_kernel_graph(x, bandwidth=0.5)
        assert graph.kernel_name == "gaussian"
        assert graph.bandwidth == 0.5
        assert graph.construction == "full"
        assert graph.n_vertices == 5
        assert not graph.is_sparse

    def test_zero_diagonal_option(self, rng):
        x = rng.normal(size=(6, 2))
        graph = full_kernel_graph(x, bandwidth=0.5, zero_diagonal=True)
        np.testing.assert_array_equal(np.diag(graph.dense_weights()), np.zeros(6))

    def test_default_keeps_self_weights(self, rng):
        """The paper's D includes self-weights; the default must keep them."""
        x = rng.normal(size=(6, 2))
        graph = full_kernel_graph(x, bandwidth=0.5)
        np.testing.assert_allclose(np.diag(graph.dense_weights()), np.ones(6))

    def test_degrees(self, rng):
        x = rng.normal(size=(7, 2))
        graph = full_kernel_graph(x, bandwidth=1.0)
        np.testing.assert_allclose(
            graph.degree(), graph.dense_weights().sum(axis=1)
        )


class TestKnnGraph:
    def test_sparse_and_symmetric(self, rng):
        x = rng.normal(size=(30, 3))
        graph = knn_graph(x, k=5, bandwidth=1.0)
        assert graph.is_sparse
        w = graph.dense_weights()
        np.testing.assert_allclose(w, w.T, atol=1e-12)

    def test_union_has_at_least_k_neighbours(self, rng):
        x = rng.normal(size=(25, 2))
        graph = knn_graph(x, k=4, bandwidth=1.0, mode="union")
        w = graph.dense_weights()
        off_diag_counts = (w > 0).sum(axis=1) - 1
        assert np.all(off_diag_counts >= 4)

    def test_mutual_subset_of_union(self, rng):
        x = rng.normal(size=(25, 2))
        union = knn_graph(x, k=4, bandwidth=1.0, mode="union").dense_weights()
        mutual = knn_graph(x, k=4, bandwidth=1.0, mode="mutual").dense_weights()
        assert np.all((mutual > 0) <= (union > 0))

    def test_weights_are_kernel_values(self, rng):
        x = rng.normal(size=(15, 2))
        graph = knn_graph(x, k=3, bandwidth=0.7)
        w = graph.dense_weights()
        full = GaussianKernel().gram(x, bandwidth=0.7)
        mask = w > 0
        np.testing.assert_allclose(w[mask], full[mask])

    def test_invalid_k_raises(self, rng):
        x = rng.normal(size=(5, 2))
        with pytest.raises(ConfigurationError):
            knn_graph(x, k=5, bandwidth=1.0)
        with pytest.raises(ConfigurationError):
            knn_graph(x, k=0, bandwidth=1.0)

    def test_invalid_mode_raises(self, rng):
        x = rng.normal(size=(5, 2))
        with pytest.raises(ConfigurationError, match="mode"):
            knn_graph(x, k=2, bandwidth=1.0, mode="both")


class TestKnnSymmetrization:
    """The kNN asymmetry footgun, pinned down.

    "j is among i's k nearest" is a *directed* relation.  On this line,

        0.0   1.0   1.8   2.0
         a     b     c     d

    with k=1: a selects b, but b selects c (1.8 - 1.0 < 1.0 - 0.0); c and
    d select each other.  ``mode`` decides what survives symmetrization:
    union keeps {a,b}, {b,c}, {c,d}; intersection keeps only the mutual
    pair {c,d}.
    """

    X = np.array([[0.0], [1.0], [1.8], [2.0]])

    @pytest.mark.parametrize("construction", ["dense", "neighbors"])
    def test_union_keeps_either_direction(self, construction):
        w = knn_graph(
            self.X, k=1, bandwidth=1.0, mode="union", construction=construction
        ).dense_weights()
        edges = {(i, j) for i in range(4) for j in range(i + 1, 4) if w[i, j] > 0}
        assert edges == {(0, 1), (1, 2), (2, 3)}

    @pytest.mark.parametrize("construction", ["dense", "neighbors"])
    def test_intersection_keeps_only_mutual(self, construction):
        w = knn_graph(
            self.X, k=1, bandwidth=1.0, mode="intersection", construction=construction
        ).dense_weights()
        edges = {(i, j) for i in range(4) for j in range(i + 1, 4) if w[i, j] > 0}
        assert edges == {(2, 3)}

    def test_mutual_is_legacy_alias_for_intersection(self):
        legacy = knn_graph(self.X, k=1, bandwidth=1.0, mode="mutual")
        canonical = knn_graph(self.X, k=1, bandwidth=1.0, mode="intersection")
        np.testing.assert_array_equal(
            legacy.dense_weights(), canonical.dense_weights()
        )
        assert legacy.params["mode"] == "intersection"

    def test_provenance_records_route(self):
        dense = knn_graph(self.X, k=1, bandwidth=1.0, construction="dense")
        neigh = knn_graph(self.X, k=1, bandwidth=1.0, construction="neighbors")
        assert dense.params["construction"] == "dense"
        assert neigh.params["construction"] == "neighbors"

    def test_invalid_construction_raises(self):
        with pytest.raises(ConfigurationError, match="construction"):
            knn_graph(self.X, k=1, bandwidth=1.0, construction="magic")


class TestEpsilonGraph:
    def test_keeps_only_close_pairs(self):
        x = np.array([[0.0], [0.5], [5.0]])
        graph = epsilon_graph(x, radius=1.0, bandwidth=1.0)
        w = graph.dense_weights()
        assert w[0, 1] > 0
        assert w[0, 2] == 0.0
        assert w[1, 2] == 0.0

    def test_large_radius_equals_full_graph(self, rng):
        x = rng.normal(size=(12, 2))
        eps = epsilon_graph(x, radius=1e6, bandwidth=0.9).dense_weights()
        full = full_kernel_graph(x, bandwidth=0.9).dense_weights()
        np.testing.assert_allclose(eps, full)

    def test_boxcar_epsilon_duality(self, rng):
        """epsilon graph at radius h with boxcar kernel == full boxcar graph."""
        x = rng.normal(size=(15, 2))
        h = 1.2
        eps = epsilon_graph(x, radius=h, kernel=BoxcarKernel(), bandwidth=h)
        full = full_kernel_graph(x, kernel=BoxcarKernel(), bandwidth=h)
        np.testing.assert_allclose(eps.dense_weights(), full.dense_weights())


class TestLocalScalingGraph:
    def test_symmetric_unit_diagonal(self, rng):
        from repro.graph.similarity import local_scaling_graph

        x = rng.normal(size=(25, 3))
        graph = local_scaling_graph(x, k=5)
        w = graph.dense_weights()
        np.testing.assert_allclose(w, w.T, atol=1e-12)
        np.testing.assert_allclose(np.diag(w), np.ones(25), atol=1e-12)
        assert graph.construction == "local_scaling"

    def test_matches_formula(self, rng):
        from repro.graph.similarity import local_scaling_graph
        from repro.kernels.base import pairwise_sq_distances

        x = rng.normal(size=(12, 2))
        k = 3
        graph = local_scaling_graph(x, k=k)
        sq = pairwise_sq_distances(x)
        with_inf = sq.copy()
        np.fill_diagonal(with_inf, np.inf)
        sigma = np.sqrt(np.sort(with_inf, axis=1)[:, k - 1])
        expected = np.exp(-sq / (sigma[:, None] * sigma[None, :]))
        np.testing.assert_allclose(graph.dense_weights(), expected, atol=1e-12)

    def test_adapts_to_density(self, rng):
        """A dense and a sparse cluster: within-cluster weights at equal
        *rank* are comparable despite very different absolute distances."""
        from repro.graph.similarity import local_scaling_graph

        dense_cluster = 0.1 * rng.normal(size=(20, 2))
        sparse_cluster = 5.0 * rng.normal(size=(20, 2)) + 100.0
        x = np.vstack([dense_cluster, sparse_cluster])
        w = local_scaling_graph(x, k=5).dense_weights()
        dense_within = w[:20, :20][np.triu_indices(20, 1)]
        sparse_within = w[20:, 20:][np.triu_indices(20, 1)]
        # Same order of magnitude of median within-cluster weight.
        ratio = np.median(dense_within) / np.median(sparse_within)
        assert 0.2 < ratio < 5.0
        # Cross-cluster weights vanish.
        assert w[:20, 20:].max() < 1e-10

    def test_duplicates_rejected(self):
        from repro.exceptions import DataValidationError
        from repro.graph.similarity import local_scaling_graph

        x = np.zeros((6, 2))
        with pytest.raises(DataValidationError, match="identical"):
            local_scaling_graph(x, k=2)

    def test_invalid_k(self, rng):
        from repro.graph.similarity import local_scaling_graph

        x = rng.normal(size=(5, 2))
        with pytest.raises(ConfigurationError):
            local_scaling_graph(x, k=5)

    def test_propagation_works_on_local_scaling(self, rng):
        from repro.core.hard import solve_hard_criterion
        from repro.datasets.toy import two_moons
        from repro.graph.similarity import local_scaling_graph
        from repro.metrics.classification import accuracy

        x, y = two_moons(200, noise=0.06, seed=4)
        labeled_idx = np.concatenate(
            [np.flatnonzero(y == 0.0)[:5], np.flatnonzero(y == 1.0)[:5]]
        )
        rest = np.setdiff1d(np.arange(200), labeled_idx)
        order = np.concatenate([labeled_idx, rest])
        graph = local_scaling_graph(x[order], k=7)
        fit = solve_hard_criterion(graph.weights, y[labeled_idx])
        predictions = (fit.unlabeled_scores >= 0.5).astype(float)
        assert accuracy(y[rest], predictions) > 0.9


class TestBuildDispatch:
    def test_dispatches_each_construction(self, rng):
        x = rng.normal(size=(20, 2))
        assert build_similarity_graph(x, bandwidth=1.0).construction == "full"
        assert (
            build_similarity_graph(x, construction="knn", bandwidth=1.0, k=3).construction
            == "knn"
        )
        assert (
            build_similarity_graph(
                x, construction="epsilon", bandwidth=1.0, radius=2.0
            ).construction
            == "epsilon"
        )

    def test_unknown_construction_raises(self, rng):
        x = rng.normal(size=(5, 2))
        with pytest.raises(ConfigurationError, match="unknown graph"):
            build_similarity_graph(x, construction="delaunay", bandwidth=1.0)

    def test_bad_params_raise_configuration_error(self, rng):
        x = rng.normal(size=(5, 2))
        with pytest.raises(ConfigurationError, match="invalid parameters"):
            build_similarity_graph(x, construction="full", bandwidth=1.0, k=3)


class TestSimilarityGraphContainer:
    def test_from_weights_validates(self):
        with pytest.raises(GraphStructureError):
            SimilarityGraph.from_weights(np.array([[0.0, -1.0], [-1.0, 0.0]]))

    def test_edge_count_dense(self):
        w = np.array([[0.0, 1.0, 0.0], [1.0, 0.0, 0.5], [0.0, 0.5, 0.0]])
        assert SimilarityGraph.from_weights(w).edge_count() == 2

    def test_edge_count_sparse_matches_dense(self, rng):
        x = rng.normal(size=(20, 2))
        graph = knn_graph(x, k=3, bandwidth=1.0)
        dense = SimilarityGraph.from_weights(graph.dense_weights())
        assert graph.edge_count() == dense.edge_count()

    def test_dense_weights_roundtrip(self):
        w = np.array([[0.0, 1.0], [1.0, 0.0]])
        graph = SimilarityGraph(weights=sparse.csr_matrix(w))
        np.testing.assert_array_equal(graph.dense_weights(), w)


class TestKnnTieDeterminism:
    """Regression tests for the kd-tree neighbour-drop bug: under
    duplicated rows or tied distances, the kd-tree route could keep an
    arbitrary member of the tied set and disagree with the dense route.
    Both routes now break ties deterministically by smallest index."""

    def _duplicated_cloud(self, seed=0, n_unique=40, n_copies=3):
        rng = np.random.default_rng(seed)
        unique = rng.normal(size=(n_unique, 2))
        return np.vstack([unique] * n_copies)

    def test_dense_and_neighbors_agree_on_duplicates(self):
        x = self._duplicated_cloud()
        for k in (2, 3, 5):
            dense = knn_graph(x, k=k, bandwidth=0.7, construction="dense")
            neigh = knn_graph(x, k=k, bandwidth=0.7, construction="neighbors")
            np.testing.assert_allclose(
                dense.dense_weights(), neigh.dense_weights(), atol=1e-12
            )

    def test_duplicate_never_drops_a_zero_distance_twin(self):
        # 3 copies of each point: with k=2, both twins (distance 0) must
        # be selected ahead of any strictly-positive neighbour
        x = self._duplicated_cloud(n_unique=20, n_copies=3)
        n_unique = 20
        graph = knn_graph(x, k=2, bandwidth=0.7, construction="neighbors")
        w = graph.weights
        unit = float(GaussianKernel().profile(np.zeros(1))[0])
        for i in range(x.shape[0]):
            twins = [j for j in range(x.shape[0])
                     if j != i and j % n_unique == i % n_unique]
            for j in twins:
                assert w[i, j] == pytest.approx(unit)

    def test_tied_but_distinct_points_break_toward_smallest_index(self):
        # vertices 1, 2, 3 are all at distance 1 from vertex 0; k=2 must
        # keep {1, 2} on both routes
        x = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [-1.0, 0.0],
                      [5.0, 5.0], [6.0, 5.0], [5.0, 6.0]])
        dense = knn_graph(x, k=2, bandwidth=1.0, construction="dense")
        neigh = knn_graph(x, k=2, bandwidth=1.0, construction="neighbors")
        np.testing.assert_allclose(
            dense.dense_weights(), neigh.dense_weights(), atol=1e-12
        )

    def test_support_excluding_kernel_rejected_with_vertices_named(self):
        # distinct points all farther apart than the boxcar support:
        # every neighbour weight is exactly 0, leaving each vertex with
        # only its self-loop — the validation names the rows instead of
        # letting a disconnected system reach the solver
        from repro.exceptions import DataValidationError

        x = np.arange(6, dtype=float)[:, None] * np.array([[1.0, 0.0]])
        with pytest.raises(DataValidationError, match=r"vertices \[0, 1, 2"):
            knn_graph(
                x, k=3, bandwidth=0.001, kernel=BoxcarKernel(),
                construction="neighbors",
            )

    def test_local_scaling_duplicate_error_names_vertices(self):
        from repro.exceptions import DataValidationError
        from repro.graph.similarity import local_scaling_graph

        x = np.vstack([np.zeros((3, 2)), np.random.default_rng(0).normal(size=(5, 2))])
        with pytest.raises(DataValidationError, match=r"vertices \[0, 1, 2\]"):
            local_scaling_graph(x, k=2)
