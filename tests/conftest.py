"""Shared fixtures: small graphs and datasets reused across test modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import make_synthetic_dataset
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule


@pytest.fixture
def rng():
    """A deterministic generator for test-local randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_weights():
    """A hand-written 4-vertex symmetric weight matrix (2 labeled first).

    Vertex layout: 0-1 labeled, 2-3 unlabeled; vertex 3 touches the
    labeled set only through vertex 2.
    """
    return np.array(
        [
            [1.0, 0.5, 0.8, 0.0],
            [0.5, 1.0, 0.1, 0.0],
            [0.8, 0.1, 1.0, 0.6],
            [0.0, 0.0, 0.6, 1.0],
        ]
    )


@pytest.fixture
def small_problem():
    """A small synthetic transductive problem with its graph.

    Returns ``(data, weights, bandwidth)`` with n=40 labeled, m=10
    unlabeled, built exactly as the paper's synthetic experiments do.
    """
    data = make_synthetic_dataset(40, 10, model="model1", seed=777)
    bandwidth = paper_bandwidth_rule(40, data.x_labeled.shape[1])
    graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
    return data, graph.dense_weights(), bandwidth


@pytest.fixture
def disconnected_weights():
    """5 vertices (2 labeled): vertices 3-4 form an orphan component."""
    w = np.zeros((5, 5))
    # Component A: labeled 0, 1 and unlabeled 2.
    w[0, 1] = w[1, 0] = 0.9
    w[0, 2] = w[2, 0] = 0.7
    # Component B: unlabeled 3, 4 only.
    w[3, 4] = w[4, 3] = 0.8
    np.fill_diagonal(w, 1.0)
    return w
