"""Unit tests for the from-scratch classification metrics."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.metrics.classification import (
    accuracy,
    auc,
    confusion_counts,
    matthews_corrcoef,
    roc_curve,
    sensitivity_specificity,
)


class TestRocCurve:
    def test_perfect_separation(self):
        y = np.array([0.0, 0.0, 1.0, 1.0])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        fpr, tpr, thresholds = roc_curve(y, scores)
        # Curve passes through (0,0) ... (0,1) ... (1,1).
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert np.any((fpr == 0.0) & (tpr == 1.0))
        assert thresholds[0] == np.inf

    def test_monotone_axes(self, rng):
        y = rng.integers(0, 2, 50).astype(float)
        y[0], y[1] = 0.0, 1.0  # both classes present
        scores = rng.normal(size=50)
        fpr, tpr, _ = roc_curve(y, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_single_class_raises(self):
        with pytest.raises(DataValidationError, match="positive and one negative"):
            roc_curve(np.ones(5), np.arange(5.0))

    def test_non_binary_raises(self):
        with pytest.raises(DataValidationError):
            roc_curve(np.array([0.0, 2.0]), np.array([0.1, 0.2]))


class TestAuc:
    def test_perfect_is_one(self):
        assert auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == pytest.approx(1.0)

    def test_inverted_is_zero(self):
        assert auc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == pytest.approx(0.0)

    def test_constant_scores_half(self):
        assert auc([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_matches_mann_whitney(self, rng):
        """AUC == P(score_pos > score_neg) + 0.5 P(tie), brute force."""
        y = rng.integers(0, 2, 60).astype(float)
        y[:2] = [0.0, 1.0]
        scores = np.round(rng.normal(size=60), 1)  # rounding induces ties
        pos = scores[y == 1.0]
        neg = scores[y == 0.0]
        wins = sum((p > q) + 0.5 * (p == q) for p in pos for q in neg)
        expected = wins / (len(pos) * len(neg))
        assert auc(y, scores) == pytest.approx(expected, abs=1e-10)

    def test_invariant_under_monotone_transform(self, rng):
        y = rng.integers(0, 2, 40).astype(float)
        y[:2] = [0.0, 1.0]
        scores = rng.normal(size=40)
        assert auc(y, scores) == pytest.approx(auc(y, np.exp(scores)), abs=1e-12)

    def test_complement_symmetry(self, rng):
        y = rng.integers(0, 2, 40).astype(float)
        y[:2] = [0.0, 1.0]
        scores = rng.normal(size=40)
        assert auc(y, scores) + auc(1.0 - y, scores) == pytest.approx(1.0)


class TestAccuracy:
    def test_basic(self):
        assert accuracy([1, 0, 1, 0], [1, 0, 0, 0]) == pytest.approx(0.75)

    def test_length_mismatch(self):
        with pytest.raises(DataValidationError):
            accuracy([1.0], [1.0, 0.0])


class TestConfusion:
    def test_hand_computed(self):
        y_true = np.array([1, 1, 0, 0, 1, 0], dtype=float)
        y_pred = np.array([1, 0, 0, 1, 1, 0], dtype=float)
        tp, fp, tn, fn = confusion_counts(y_true, y_pred)
        assert (tp, fp, tn, fn) == (2, 1, 2, 1)

    def test_counts_sum_to_n(self, rng):
        y_true = rng.integers(0, 2, 30).astype(float)
        y_pred = rng.integers(0, 2, 30).astype(float)
        assert sum(confusion_counts(y_true, y_pred)) == 30

    def test_non_binary_pred_raises(self):
        with pytest.raises(DataValidationError):
            confusion_counts(np.array([0.0, 1.0]), np.array([0.0, 0.7]))


class TestMcc:
    def test_perfect_prediction(self):
        y = np.array([0, 1, 0, 1], dtype=float)
        assert matthews_corrcoef(y, y) == pytest.approx(1.0)

    def test_perfect_anti_prediction(self):
        y = np.array([0, 1, 0, 1], dtype=float)
        assert matthews_corrcoef(y, 1 - y) == pytest.approx(-1.0)

    def test_degenerate_returns_zero(self):
        assert matthews_corrcoef([0.0, 1.0], [1.0, 1.0]) == 0.0

    def test_matches_pearson_correlation(self, rng):
        """MCC equals the Pearson correlation of the two binary vectors."""
        y_true = rng.integers(0, 2, 100).astype(float)
        y_pred = (y_true + (rng.random(100) < 0.3)) % 2
        y_true[:2] = [0.0, 1.0]
        y_pred[:2] = [0.0, 1.0]
        expected = np.corrcoef(y_true, y_pred)[0, 1]
        assert matthews_corrcoef(y_true, y_pred) == pytest.approx(expected, abs=1e-10)


class TestSensitivitySpecificity:
    def test_hand_computed(self):
        y_true = np.array([1, 1, 1, 0, 0], dtype=float)
        y_pred = np.array([1, 1, 0, 0, 1], dtype=float)
        sens, spec = sensitivity_specificity(y_true, y_pred)
        assert sens == pytest.approx(2 / 3)
        assert spec == pytest.approx(1 / 2)

    def test_one_class_raises(self):
        with pytest.raises(DataValidationError):
            sensitivity_specificity(np.ones(4), np.ones(4))

    def test_roc_point_consistency(self, rng):
        """(1-spec, sens) at a threshold lies on the ROC curve."""
        y = rng.integers(0, 2, 50).astype(float)
        y[:2] = [0.0, 1.0]
        scores = rng.normal(size=50)
        threshold = 0.2
        preds = (scores >= threshold).astype(float)
        sens, spec = sensitivity_specificity(y, preds)
        fpr, tpr, thresholds = roc_curve(y, scores)
        idx = np.argmin(np.abs(thresholds[1:] - scores[scores >= threshold].min())) + 1
        assert tpr[idx] == pytest.approx(sens)
        assert fpr[idx] == pytest.approx(1 - spec)
