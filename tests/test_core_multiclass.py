"""Unit tests for multiclass label propagation."""

import numpy as np
import pytest

from repro.core.hard import solve_hard_criterion
from repro.core.multiclass import (
    MulticlassLabelPropagation,
    solve_multiclass_hard,
)
from repro.datasets.toy import gaussian_blobs
from repro.exceptions import DataValidationError, NotFittedError
from repro.graph.similarity import full_kernel_graph


@pytest.fixture
def blob_problem(rng):
    """Three well-separated blobs; 5 labels per blob, rest unlabeled."""
    centers = np.array([[0.0, 0.0], [6.0, 0.0], [3.0, 5.0]])
    x, y = gaussian_blobs(90, centers=centers, std=0.5, seed=1)
    labeled_idx = np.concatenate(
        [np.flatnonzero(y == c)[:5] for c in (0.0, 1.0, 2.0)]
    )
    unlabeled_idx = np.setdiff1d(np.arange(90), labeled_idx)
    order = np.concatenate([labeled_idx, unlabeled_idx])
    x, y = x[order], y[order]
    graph = full_kernel_graph(x, bandwidth=1.0)
    return x, y, graph.dense_weights(), len(labeled_idx)


class TestSolveMulticlass:
    def test_rows_sum_to_one(self, blob_problem):
        x, y, weights, n = blob_problem
        fit = solve_multiclass_hard(weights, y[:n])
        np.testing.assert_allclose(fit.scores.sum(axis=1), 1.0, atol=1e-8)

    def test_scores_in_unit_interval(self, blob_problem):
        x, y, weights, n = blob_problem
        fit = solve_multiclass_hard(weights, y[:n])
        assert fit.scores.min() >= -1e-10
        assert fit.scores.max() <= 1.0 + 1e-10

    def test_each_column_is_binary_hard_criterion(self, blob_problem):
        """Column k equals the hard criterion with one-vs-rest labels."""
        x, y, weights, n = blob_problem
        fit = solve_multiclass_hard(weights, y[:n])
        for k, cls in enumerate(fit.classes):
            binary = (y[:n] == cls).astype(float)
            expected = solve_hard_criterion(weights, binary).unlabeled_scores
            np.testing.assert_allclose(fit.scores[:, k], expected, atol=1e-9)

    def test_separable_blobs_classified_perfectly(self, blob_problem):
        x, y, weights, n = blob_problem
        fit = solve_multiclass_hard(weights, y[:n])
        np.testing.assert_array_equal(fit.predict(), y[n:])

    def test_predict_proba_normalized(self, blob_problem):
        x, y, weights, n = blob_problem
        proba = solve_multiclass_hard(weights, y[:n]).predict_proba()
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-10)
        assert proba.min() >= 0.0

    def test_two_classes_matches_binary(self, small_problem):
        """K=2 multiclass reduces to the binary hard criterion."""
        data, weights, _ = small_problem
        fit = solve_multiclass_hard(weights, data.y_labeled)
        binary = solve_hard_criterion(weights, data.y_labeled)
        positive_col = list(fit.classes).index(1.0)
        np.testing.assert_allclose(
            fit.scores[:, positive_col], binary.unlabeled_scores, atol=1e-9
        )

    def test_single_class_raises(self, tiny_weights):
        with pytest.raises(DataValidationError, match=">= 2 classes"):
            solve_multiclass_hard(tiny_weights, np.array([1.0, 1.0]))

    def test_no_unlabeled_raises(self, tiny_weights):
        with pytest.raises(DataValidationError):
            solve_multiclass_hard(tiny_weights, np.array([0.0, 1.0, 0.0, 1.0]))

    def test_string_free_integer_classes(self, blob_problem):
        """Arbitrary numeric class values survive the round trip."""
        x, y, weights, n = blob_problem
        relabeled = np.where(y == 0.0, 10.0, np.where(y == 1.0, 20.0, 30.0))
        fit = solve_multiclass_hard(weights, relabeled[:n])
        np.testing.assert_array_equal(np.unique(fit.predict()), [10.0, 20.0, 30.0])


class TestClassMassNormalization:
    def test_preserves_within_column_ranking(self, blob_problem):
        from repro.core.multiclass import class_mass_normalize

        x, y, weights, n = blob_problem
        fit = solve_multiclass_hard(weights, y[:n])
        normalized = class_mass_normalize(fit.scores, fit.priors)
        for k in range(fit.scores.shape[1]):
            np.testing.assert_array_equal(
                np.argsort(fit.scores[:, k]), np.argsort(normalized[:, k])
            )

    def test_masses_match_priors_after_normalization(self, blob_problem):
        from repro.core.multiclass import class_mass_normalize

        x, y, weights, n = blob_problem
        fit = solve_multiclass_hard(weights, y[:n])
        normalized = class_mass_normalize(fit.scores, fit.priors)
        np.testing.assert_allclose(normalized.mean(axis=0), fit.priors, atol=1e-10)

    def test_corrects_baseline_shifted_columns(self):
        """When one column carries an additive baseline advantage that
        the priors do not justify, raw argmax collapses to that class;
        CMN restores the signal-driven decision."""
        from repro.core.multiclass import MulticlassFit, class_mass_normalize

        signal = np.linspace(-0.04, 0.04, 9)
        scores = np.column_stack([0.60 + signal, 0.40 - signal])
        fit = MulticlassFit(
            scores=scores,
            classes=np.array([0.0, 1.0]),
            priors=np.array([0.5, 0.5]),
        )
        raw = fit.predict(class_mass_normalization=False)
        assert np.all(raw == 0.0)  # baseline swamps the signal
        cmn = fit.predict(class_mass_normalization=True)
        assert set(np.unique(cmn)) == {0.0, 1.0}
        # After CMN, the decision follows the signal's sign.
        normalized = class_mass_normalize(scores, fit.priors)
        expected = (normalized[:, 1] > normalized[:, 0]).astype(float)
        np.testing.assert_array_equal(cmn, expected)

    def test_validation(self):
        from repro.core.multiclass import class_mass_normalize

        with pytest.raises(DataValidationError):
            class_mass_normalize(np.ones((3, 2)), np.ones(3))
        with pytest.raises(DataValidationError):
            class_mass_normalize(np.ones((3, 2)), np.array([0.5, 0.0]))
        with pytest.raises(DataValidationError, match="mass"):
            class_mass_normalize(np.zeros((3, 2)), np.array([0.5, 0.5]))


class TestEstimator:
    def test_fit_predict_on_blobs(self, rng):
        centers = np.array([[0.0, 0.0], [8.0, 0.0], [4.0, 7.0]])
        x, y = gaussian_blobs(120, centers=centers, std=0.6, seed=2)
        labeled_idx = np.concatenate(
            [np.flatnonzero(y == c)[:6] for c in (0.0, 1.0, 2.0)]
        )
        unlabeled_idx = np.setdiff1d(np.arange(120), labeled_idx)
        model = MulticlassLabelPropagation(bandwidth=1.0)
        model.fit(x[labeled_idx], y[labeled_idx], x[unlabeled_idx])
        assert np.mean(model.predict() == y[unlabeled_idx]) > 0.95
        proba = model.predict_proba()
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-10)
        np.testing.assert_array_equal(model.classes_, [0.0, 1.0, 2.0])

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            MulticlassLabelPropagation().predict()

    def test_dimension_mismatch_raises(self, rng):
        model = MulticlassLabelPropagation(bandwidth=1.0)
        with pytest.raises(DataValidationError, match="columns"):
            model.fit(
                rng.normal(size=(6, 2)),
                np.array([0, 0, 0, 1, 1, 1], dtype=float),
                rng.normal(size=(3, 4)),
            )

    def test_median_bandwidth_default(self, rng):
        centers = np.array([[0.0, 0.0], [5.0, 0.0]])
        x, y = gaussian_blobs(40, centers=centers, std=0.5, seed=3)
        model = MulticlassLabelPropagation()
        model.fit(x[:20], y[:20], x[20:])
        assert model.bandwidth_ > 0
