"""Unit tests for repro.kernels.bandwidth."""

import math

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.kernels.bandwidth import (
    knn_distance_rule,
    median_heuristic,
    paper_bandwidth_rule,
    scott_rule,
    silverman_rule,
)


class TestPaperRule:
    def test_exact_formula(self):
        assert paper_bandwidth_rule(100, 5) == pytest.approx(
            (math.log(100) / 100) ** 0.2
        )

    def test_theorem_limits(self):
        """h_n -> 0 while n h_n^d = log n -> inf."""
        d = 5
        ns = [10, 100, 1000, 100_000]
        hs = [paper_bandwidth_rule(n, d) for n in ns]
        assert all(h2 < h1 for h1, h2 in zip(hs, hs[1:]))
        masses = [n * h**d for n, h in zip(ns, hs)]
        assert all(m2 > m1 for m1, m2 in zip(masses, masses[1:]))
        np.testing.assert_allclose(masses, [math.log(n) for n in ns], rtol=1e-12)

    def test_requires_n_at_least_2(self):
        with pytest.raises(DataValidationError):
            paper_bandwidth_rule(1, 5)

    def test_requires_positive_dim(self):
        with pytest.raises(DataValidationError):
            paper_bandwidth_rule(100, 0)


class TestMedianHeuristic:
    def test_sigma_squared_is_median_sq_distance(self, rng):
        x = rng.normal(size=(30, 4))
        h = median_heuristic(x)
        from repro.kernels.base import pairwise_sq_distances

        sq = pairwise_sq_distances(x)
        med = np.median(sq[np.triu_indices(30, k=1)])
        assert h**2 == pytest.approx(med)

    def test_two_points(self):
        x = np.array([[0.0, 0.0], [3.0, 4.0]])
        assert median_heuristic(x) == pytest.approx(5.0)

    def test_identical_inputs_raise(self):
        x = np.zeros((5, 2))
        with pytest.raises(DataValidationError, match="identical"):
            median_heuristic(x)

    def test_single_sample_raises(self):
        with pytest.raises(DataValidationError):
            median_heuristic(np.zeros((1, 2)))

    def test_subsample_is_deterministic_given_seed(self, rng):
        x = rng.normal(size=(100, 3))
        a = median_heuristic(x, subsample=20, seed=0)
        b = median_heuristic(x, subsample=20, seed=0)
        assert a == b

    def test_subsample_close_to_full(self, rng):
        x = rng.normal(size=(300, 3))
        full = median_heuristic(x)
        sub = median_heuristic(x, subsample=200, seed=1)
        assert abs(full - sub) / full < 0.2


class TestClassicalRules:
    @pytest.mark.parametrize("rule", [scott_rule, silverman_rule])
    def test_positive_and_shrinking_in_n(self, rule, rng):
        small = rng.normal(size=(50, 3))
        large = rng.normal(size=(5000, 3))
        h_small = rule(small)
        h_large = rule(large)
        assert h_small > 0 and h_large > 0
        assert h_large < h_small

    @pytest.mark.parametrize("rule", [scott_rule, silverman_rule])
    def test_constant_data_raises(self, rule):
        with pytest.raises(DataValidationError):
            rule(np.ones((20, 2)))

    def test_scott_scales_with_spread(self, rng):
        x = rng.normal(size=(200, 2))
        assert scott_rule(3.0 * x) == pytest.approx(3.0 * scott_rule(x), rel=1e-6)


class TestKnnRule:
    def test_positive(self, rng):
        x = rng.normal(size=(40, 3))
        assert knn_distance_rule(x, k=5) > 0

    def test_monotone_in_k(self, rng):
        x = rng.normal(size=(40, 3))
        assert knn_distance_rule(x, k=10) > knn_distance_rule(x, k=2)

    def test_invalid_k_raises(self, rng):
        x = rng.normal(size=(10, 2))
        with pytest.raises(DataValidationError):
            knn_distance_rule(x, k=10)
        with pytest.raises(DataValidationError):
            knn_distance_rule(x, k=0)

    def test_duplicate_inputs_raise(self):
        with pytest.raises(DataValidationError):
            knn_distance_rule(np.zeros((6, 2)), k=2)
