"""Unit tests for the random-walk semantics of the hard criterion."""

import numpy as np
import pytest

from repro.core.hard import solve_hard_criterion
from repro.exceptions import DataValidationError, DisconnectedGraphError
from repro.graph.random_walk import (
    absorption_probabilities,
    effective_resistance,
    expected_hitting_times,
)


class TestAbsorptionProbabilities:
    def test_equals_hard_criterion(self, small_problem):
        """The Markov-chain derivation and the optimization derivation of
        the hard criterion agree to machine precision."""
        data, weights, _ = small_problem
        hard = solve_hard_criterion(weights, data.y_labeled)
        absorb = absorption_probabilities(weights, data.y_labeled)
        np.testing.assert_allclose(absorb, hard.unlabeled_scores, atol=1e-10)

    def test_probabilities_in_unit_interval_for_binary(self, small_problem):
        data, weights, _ = small_problem
        absorb = absorption_probabilities(weights, data.y_labeled)
        assert absorb.min() >= -1e-10
        assert absorb.max() <= 1.0 + 1e-10

    def test_hand_computed_chain(self):
        """Chain 0 - 2 - 1 (0 labeled 0.0, 1 labeled 1.0): the walk from 2
        hits either end first with probability 1/2 each."""
        w = np.zeros((3, 3))
        w[0, 2] = w[2, 0] = 1.0
        w[1, 2] = w[2, 1] = 1.0
        absorb = absorption_probabilities(w, np.array([0.0, 1.0]))
        assert absorb[0] == pytest.approx(0.5)

    def test_biased_edge_weights(self):
        """Heavier edge toward the 1-label raises the absorption prob."""
        w = np.zeros((3, 3))
        w[0, 2] = w[2, 0] = 1.0
        w[1, 2] = w[2, 1] = 3.0
        absorb = absorption_probabilities(w, np.array([0.0, 1.0]))
        assert absorb[0] == pytest.approx(0.75)

    def test_disconnected_raises(self, disconnected_weights):
        with pytest.raises(DisconnectedGraphError):
            absorption_probabilities(disconnected_weights, np.array([1.0, 0.0]))


class TestHittingTimes:
    def test_all_positive_and_at_least_one(self, small_problem):
        data, weights, _ = small_problem
        times = expected_hitting_times(weights, data.n_labeled)
        assert np.all(times >= 1.0 - 1e-10)

    def test_chain_hand_computed(self):
        """Path L - u1 - u2 (labeled end): standard gambler's-ruin times.

        With unit weights the expected steps to reach the labeled end are
        t1 = 3, t2 = 4 (from first-step equations t1 = 1 + t2/2,
        t2 = 1 + t1).
        """
        w = np.zeros((3, 3))
        w[0, 1] = w[1, 0] = 1.0
        w[1, 2] = w[2, 1] = 1.0
        times = expected_hitting_times(w, 1)
        np.testing.assert_allclose(times, [3.0, 4.0], atol=1e-10)

    def test_farther_vertices_take_longer(self):
        """On a path labeled at one end, hitting time grows with distance."""
        length = 6
        w = np.zeros((length, length))
        for i in range(length - 1):
            w[i, i + 1] = w[i + 1, i] = 1.0
        times = expected_hitting_times(w, 1)
        assert np.all(np.diff(times) > 0)

    def test_zero_labeled_raises(self, tiny_weights):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            expected_hitting_times(tiny_weights, 0)


class TestEffectiveResistance:
    def test_series_resistors(self):
        """Path of 3 unit-conductance edges: R(ends) = 3."""
        w = np.zeros((4, 4))
        for i in range(3):
            w[i, i + 1] = w[i + 1, i] = 1.0
        resistance = effective_resistance(w, pairs=[(0, 3)])
        assert resistance[0] == pytest.approx(3.0)

    def test_parallel_resistors(self):
        """Two vertices joined by weight 2 (conductance 2): R = 1/2."""
        w = np.array([[0.0, 2.0], [2.0, 0.0]])
        resistance = effective_resistance(w, pairs=[(0, 1)])
        assert resistance[0] == pytest.approx(0.5)

    def test_triangle(self):
        """Unit triangle: R between any pair = 2/3 (1 parallel with 2)."""
        w = np.ones((3, 3))
        np.fill_diagonal(w, 0.0)
        resistance = effective_resistance(w, pairs=[(0, 1), (1, 2), (0, 2)])
        np.testing.assert_allclose(resistance, np.full(3, 2.0 / 3.0), atol=1e-10)

    def test_full_matrix_properties(self, small_problem):
        _, weights, _ = small_problem
        resistance = effective_resistance(weights)
        np.testing.assert_allclose(resistance, resistance.T, atol=1e-10)
        np.testing.assert_allclose(np.diag(resistance), 0.0, atol=1e-10)
        assert resistance[0, 1] > 0

    def test_triangle_inequality(self, small_problem):
        """Effective resistance is a metric."""
        _, weights, _ = small_problem
        resistance = effective_resistance(weights)
        n = resistance.shape[0]
        rng = np.random.default_rng(0)
        for _ in range(30):
            i, j, k = rng.integers(0, n, 3)
            assert resistance[i, k] <= resistance[i, j] + resistance[j, k] + 1e-9

    def test_disconnected_raises(self, disconnected_weights):
        with pytest.raises(DataValidationError, match="connected"):
            effective_resistance(disconnected_weights)

    def test_bad_pairs_shape(self, tiny_weights):
        with pytest.raises(DataValidationError):
            effective_resistance(tiny_weights, pairs=[(0, 1, 2)])
