"""Dense-vs-sparse golden-parity suite: the correctness lock for the
sparse-native fast path.

Every estimator must produce the same scores whether it is handed

* the *dense* ndarray of a kNN graph built by the historical dense route,
* the same graph as a scipy *sparse* CSR matrix, or
* the CSR built by the densification-free *neighbor* route
  (``construction="neighbors"``), which never materializes an ``(N, N)``
  array.

If any core path silently densifies — or the neighbor construction
drifts from the dense one — these tests are the tripwire.  CI runs this
module with ``-W error::scipy.sparse.SparseEfficiencyWarning`` so even
*inefficient* sparse operations (structure-changing assignment, implicit
format conversions) fail the build.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.core.hard import solve_hard_criterion
from repro.core.multiclass import solve_multiclass_hard
from repro.core.nadaraya_watson import nadaraya_watson_from_weights
from repro.core.propagation import local_global_consistency, propagate_labels, propagate_soft
from repro.core.soft import solve_soft_criterion
from repro.core.uncertainty import gaussian_field_posterior
from repro.core.variants import solve_soft_criterion_normalized
from repro.graph.similarity import knn_graph

ATOL = 1e-8

N_TOTAL = 40
N_LABELED = 12
K = 6


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(7)
    x = rng.normal(size=(N_TOTAL, 2))
    y = np.sin(x[:, 0]) + 0.1 * rng.normal(size=N_TOTAL)
    y_labeled = y[:N_LABELED]
    y_classes = (x[:N_LABELED, 0] > 0).astype(float) + (x[:N_LABELED, 1] > 0)
    dense_built = knn_graph(x, k=K, bandwidth=1.0, construction="dense")
    neighbor_built = knn_graph(x, k=K, bandwidth=1.0, construction="neighbors")
    return {
        "dense": dense_built.dense_weights(),
        "sparse": dense_built.weights.tocsr(),
        "neighbors": neighbor_built.weights.tocsr(),
        "y": y_labeled,
        "y_classes": y_classes,
    }


VARIANTS = ("dense", "sparse", "neighbors")


def _check_parity(problem, solve, atol=ATOL):
    """Run ``solve(weights)`` on all three inputs and compare to dense."""
    reference = solve(problem["dense"])
    for variant in ("sparse", "neighbors"):
        got = solve(problem[variant])
        np.testing.assert_allclose(got, reference, atol=atol, rtol=0,
                                   err_msg=f"variant {variant!r} diverged")
    return reference


class TestInputsAgree:
    def test_three_representations_same_graph(self, problem):
        np.testing.assert_allclose(
            np.asarray(problem["sparse"].todense()), problem["dense"], atol=0
        )
        np.testing.assert_allclose(
            np.asarray(problem["neighbors"].todense()), problem["dense"], atol=1e-12
        )

    def test_sparse_inputs_are_actually_sparse(self, problem):
        assert sparse.issparse(problem["sparse"])
        assert sparse.issparse(problem["neighbors"])
        assert problem["sparse"].nnz < N_TOTAL * N_TOTAL


class TestEstimatorParity:
    def test_hard(self, problem):
        _check_parity(problem, lambda w: solve_hard_criterion(w, problem["y"]).scores)

    @pytest.mark.parametrize("method", ["full", "schur"])
    @pytest.mark.parametrize("lam", [0.05, 1.0])
    def test_soft(self, problem, method, lam):
        _check_parity(
            problem,
            lambda w: solve_soft_criterion(w, problem["y"], lam, method=method).scores,
        )

    def test_soft_lam_zero_matches_hard(self, problem):
        scores = _check_parity(
            problem, lambda w: solve_soft_criterion(w, problem["y"], 0.0).scores
        )
        hard = solve_hard_criterion(problem["sparse"], problem["y"]).scores
        np.testing.assert_allclose(scores, hard, atol=ATOL)

    def test_propagation_hard(self, problem):
        _check_parity(
            problem,
            lambda w: propagate_labels(w, problem["y"], tol=1e-13).fit.scores,
        )

    def test_propagation_soft(self, problem):
        _check_parity(
            problem,
            lambda w: propagate_soft(w, problem["y"], 0.5, tol=1e-13).fit.scores,
        )

    def test_nadaraya_watson(self, problem):
        _check_parity(problem, lambda w: nadaraya_watson_from_weights(w, problem["y"]))

    def test_multiclass(self, problem):
        _check_parity(
            problem,
            lambda w: solve_multiclass_hard(w, problem["y_classes"]).scores,
        )

    def test_multiclass_predictions(self, problem):
        dense_fit = solve_multiclass_hard(problem["dense"], problem["y_classes"])
        for variant in ("sparse", "neighbors"):
            fit = solve_multiclass_hard(problem[variant], problem["y_classes"])
            np.testing.assert_array_equal(fit.predict(), dense_fit.predict())
            np.testing.assert_allclose(
                fit.predict_proba(), dense_fit.predict_proba(), atol=ATOL
            )

    def test_uncertainty_mean(self, problem):
        _check_parity(
            problem, lambda w: gaussian_field_posterior(w, problem["y"]).mean
        )

    def test_uncertainty_variance(self, problem):
        _check_parity(
            problem, lambda w: gaussian_field_posterior(w, problem["y"]).variance
        )

    def test_variants_normalized(self, problem):
        _check_parity(
            problem,
            lambda w: solve_soft_criterion_normalized(w, problem["y"], 0.5).scores,
        )

    def test_local_global_consistency(self, problem):
        _check_parity(
            problem,
            lambda w: local_global_consistency(w, problem["y"], alpha=0.9).scores,
        )


class TestNoDenseAllocation:
    """The acceptance guard: ``construction="neighbors"`` at N=8000 must
    never allocate an ``(N, N)`` dense array."""

    N = 8000

    def test_neighbor_construction_never_densifies(self, monkeypatch):
        import repro.graph.similarity as similarity

        budget = self.N * self.N // 4  # elements; far below any (N, N) array

        def guarded(allocator):
            def wrapper(shape, *args, **kwargs):
                size = int(np.prod(np.atleast_1d(shape)))
                assert size < budget, (
                    f"dense allocation of shape {shape} on the neighbor path"
                )
                return allocator(shape, *args, **kwargs)

            return wrapper

        def poisoned(*args, **kwargs):
            raise AssertionError(
                "pairwise_sq_distances (the O(N^2) kernel) was called on "
                "the neighbor construction path"
            )

        monkeypatch.setattr(similarity, "pairwise_sq_distances", poisoned)
        monkeypatch.setattr(np, "empty", guarded(np.empty))
        monkeypatch.setattr(np, "zeros", guarded(np.zeros))
        monkeypatch.setattr(np, "ones", guarded(np.ones))

        rng = np.random.default_rng(0)
        x = rng.normal(size=(self.N, 2))
        graph = knn_graph(x, k=8, bandwidth=0.5, construction="neighbors")
        assert graph.is_sparse
        # union symmetrization: at most N self-loops + 2 N k directed edges
        assert graph.weights.nnz <= self.N + 2 * self.N * 8

    def test_auto_picks_neighbors_at_scale(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(600, 2))
        graph = knn_graph(x, k=5, bandwidth=0.5)
        assert graph.params["construction"] == "neighbors"
        small = knn_graph(rng.normal(size=(30, 2)), k=5, bandwidth=0.5)
        assert small.params["construction"] == "dense"
