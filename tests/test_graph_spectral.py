"""Unit tests for repro.graph.spectral."""

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import DataValidationError
from repro.graph.laplacian import laplacian
from repro.graph.spectral import fiedler_value, laplacian_spectrum, spectral_embedding


@pytest.fixture
def ring_weights():
    """A 6-cycle: known Laplacian spectrum 2 - 2 cos(2 pi k / 6)."""
    n = 6
    w = np.zeros((n, n))
    for i in range(n):
        w[i, (i + 1) % n] = 1.0
        w[(i + 1) % n, i] = 1.0
    return w


class TestSpectrum:
    def test_ring_spectrum_closed_form(self, ring_weights):
        got = laplacian_spectrum(ring_weights)
        expected = np.sort([2 - 2 * np.cos(2 * np.pi * k / 6) for k in range(6)])
        np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_first_eigenvalue_zero(self, ring_weights):
        assert laplacian_spectrum(ring_weights)[0] == pytest.approx(0.0, abs=1e-10)

    def test_k_smallest_matches_full(self, ring_weights):
        full = laplacian_spectrum(ring_weights)
        partial = laplacian_spectrum(ring_weights, k=3)
        np.testing.assert_allclose(partial, full[:3], atol=1e-10)

    def test_sparse_partial(self, ring_weights):
        partial = laplacian_spectrum(sparse.csr_matrix(ring_weights), k=2)
        full = laplacian_spectrum(ring_weights)
        np.testing.assert_allclose(partial, full[:2], atol=1e-8)

    def test_invalid_k(self, ring_weights):
        with pytest.raises(DataValidationError):
            laplacian_spectrum(ring_weights, k=0)
        with pytest.raises(DataValidationError):
            laplacian_spectrum(ring_weights, k=7)


class TestFiedler:
    def test_zero_iff_disconnected(self, disconnected_weights):
        assert fiedler_value(disconnected_weights) == pytest.approx(0.0, abs=1e-8)

    def test_positive_when_connected(self, ring_weights):
        assert fiedler_value(ring_weights) > 0.1

    def test_complete_graph_value(self):
        """Complete graph K_n (no self loops): Fiedler value = n."""
        n = 5
        w = np.ones((n, n))
        np.fill_diagonal(w, 0.0)
        assert fiedler_value(w) == pytest.approx(n, rel=1e-10)

    def test_requires_two_vertices(self):
        with pytest.raises(DataValidationError):
            fiedler_value(np.zeros((1, 1)))


class TestEmbedding:
    def test_shape(self, ring_weights):
        emb = spectral_embedding(ring_weights, n_components=2)
        assert emb.shape == (6, 2)

    def test_columns_are_eigenvectors(self, ring_weights):
        emb = spectral_embedding(ring_weights, n_components=2)
        lap = laplacian(ring_weights)
        spectrum = laplacian_spectrum(ring_weights)
        for col in range(2):
            v = emb[:, col]
            ratio = lap @ v
            np.testing.assert_allclose(
                ratio, spectrum[col + 1] * v, atol=1e-8
            )

    def test_separates_clusters(self):
        """Two dense blobs joined weakly: embedding splits them by sign."""
        w = np.zeros((6, 6))
        w[:3, :3] = 1.0
        w[3:, 3:] = 1.0
        np.fill_diagonal(w, 0.0)
        w[2, 3] = w[3, 2] = 0.01
        emb = spectral_embedding(w, n_components=1).ravel()
        assert np.all(np.sign(emb[:3]) == np.sign(emb[0]))
        assert np.all(np.sign(emb[3:]) == -np.sign(emb[0]))

    def test_invalid_components(self, ring_weights):
        with pytest.raises(DataValidationError):
            spectral_embedding(ring_weights, n_components=0)
        with pytest.raises(DataValidationError):
            spectral_embedding(ring_weights, n_components=6)
