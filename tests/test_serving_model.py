"""Unit tests for the serving model, micro-batching server, and CLI verb.

Covers the serving *boundary* (malformed queries are
:class:`~repro.exceptions.ConfigurationError`, mapped by the CLI to a
one-line ``error:`` + exit 2 — the PR-4 convention), the counter
surfaces, ticket lifecycle, and the ``repro serve-eval`` verb.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets.synthetic import make_regression_dataset, truncated_mvn_inputs
from repro.exceptions import ConfigurationError, NotFittedError
from repro.serving import (
    SERVING_METHODS,
    GraphSSLModel,
    ModelServer,
    run_serve_eval,
)


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(5)
    data = make_regression_dataset(25, 75, seed=rng)
    model = GraphSSLModel(graph="full")
    model.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)
    queries = truncated_mvn_inputs(6, seed=rng)
    return model, queries


class TestConstructionAndFit:
    def test_negative_lam_rejected(self):
        with pytest.raises(ConfigurationError, match="lam"):
            GraphSSLModel(lam=-0.5)

    def test_nonpositive_field_scale_rejected(self):
        with pytest.raises(ConfigurationError, match="field_scale"):
            GraphSSLModel(field_scale=0.0)

    def test_unfitted_model_refuses_queries(self):
        with pytest.raises(NotFittedError):
            GraphSSLModel().predict(np.zeros((1, 3)))

    def test_unfitted_model_refuses_server(self):
        with pytest.raises(NotFittedError):
            ModelServer(GraphSSLModel())

    def test_label_length_mismatch(self):
        with pytest.raises(ConfigurationError, match="rows"):
            GraphSSLModel().fit(np.zeros((4, 2)), np.zeros(3))

    def test_unlabeled_feature_mismatch(self):
        with pytest.raises(ConfigurationError, match="features"):
            GraphSSLModel().fit(
                np.random.default_rng(0).normal(size=(4, 2)),
                np.zeros(4),
                np.zeros((3, 5)),
            )

    def test_fit_returns_self_and_exposes_state(self, fitted):
        model, _ = fitted
        assert model.n_labeled_ == 25
        assert model.n_reference_ == 100
        assert model.scores_.shape == (100,)
        assert model.bandwidth_ > 0


class TestServingBoundary:
    """Malformed queries raise ConfigurationError at the boundary."""

    def test_one_dimensional_query_rejected(self, fitted):
        model, _ = fitted
        with pytest.raises(ConfigurationError, match=r"x\[None, :\]"):
            model.predict(np.zeros(5))

    def test_empty_batch_rejected(self, fitted):
        model, _ = fitted
        with pytest.raises(ConfigurationError, match="empty"):
            model.predict(np.zeros((0, 5)))

    def test_wrong_feature_count_rejected(self, fitted):
        model, _ = fitted
        with pytest.raises(ConfigurationError, match="features"):
            model.predict(np.zeros((2, 4)))

    def test_non_numeric_batch_rejected(self, fitted):
        model, _ = fitted
        with pytest.raises(ConfigurationError, match="numeric"):
            model.predict([["a", "b", "c", "d", "e"]])

    def test_non_finite_batch_rejected(self, fitted):
        model, _ = fitted
        bad = np.zeros((2, 5))
        bad[1, 3] = np.nan
        with pytest.raises(ConfigurationError, match="non-finite"):
            model.predict(bad)

    def test_unknown_method_rejected(self, fitted):
        model, queries = fitted
        with pytest.raises(ConfigurationError, match="unknown serving method"):
            model.predict(queries, method="kriging")

    def test_bad_batch_size_rejected(self, fitted):
        model, queries = fitted
        with pytest.raises(ConfigurationError, match="batch_size"):
            model.predict_batch(queries, batch_size=0)

    def test_interval_requires_hard_criterion(self):
        rng = np.random.default_rng(9)
        data = make_regression_dataset(15, 30, seed=rng)
        soft = GraphSSLModel(lam=0.3)
        soft.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)
        with pytest.raises(ConfigurationError, match="hard-criterion"):
            soft.predict(
                truncated_mvn_inputs(2, seed=rng), return_interval=True
            )

    def test_interval_requires_positive_z(self, fitted):
        model, queries = fitted
        with pytest.raises(ConfigurationError, match="z must be"):
            model.predict(queries, return_interval=True, z=0.0)


class TestCountersAndState:
    def test_stats_counters_advance(self, fitted):
        model, queries = fitted
        before = model.stats()
        model.predict(queries, method="nw")
        model.predict_batch(queries, method="nystrom", batch_size=2)
        after = model.stats()
        assert after.queries == before.queries + 2 * len(queries)
        assert after.nw_queries == before.nw_queries + len(queries)
        assert after.nystrom_queries == before.nystrom_queries + len(queries)
        assert after.batches == before.batches + 1 + 3

    def test_exact_iterations_accumulate(self, fitted):
        model, queries = fitted
        before = model.stats().exact_iterations
        model.predict(queries, method="exact")
        assert model.stats().exact_iterations > before

    def test_pickle_roundtrip_drops_factorizations(self, fitted):
        import pickle

        model, queries = fitted
        clone = pickle.loads(pickle.dumps(model))
        assert clone._workspace is None and clone._inserter is None
        # The clone still serves — including the exact path, which
        # rebuilds its workspace lazily.
        for method in SERVING_METHODS:
            np.testing.assert_array_equal(
                clone.predict(queries, method=method),
                model.predict(queries, method=method),
            )

    def test_query_weights_rows_are_frozen_graph_rows(self, fitted):
        model, queries = fitted
        rows = model.query_weights(queries)
        assert len(rows) == len(queries)
        for row in rows:
            assert row.indices.shape == row.weights.shape
            assert np.all(np.isfinite(row.weights))
            assert row.total >= 0


class TestModelServer:
    def test_ticket_lifecycle_and_auto_flush(self, fitted):
        model, queries = fitted
        server = ModelServer(model, max_batch_size=3)
        tickets = [server.submit(q) for q in queries[:3]]
        # The third submit filled the batch -> auto-flush resolved all.
        assert all(t.done for t in tickets)
        stats = server.stats()
        assert stats.full_batches == 1 and stats.flushes == 1
        assert stats.pending == 0

    def test_pending_ticket_resolves_lazily(self, fitted):
        model, queries = fitted
        server = ModelServer(model, max_batch_size=50)
        ticket = server.submit(queries[0])
        assert not ticket.done
        value = ticket.result()  # triggers the flush
        assert ticket.done
        assert value == pytest.approx(
            float(model.predict(queries[:1])[0]), abs=0
        )

    def test_submit_rejects_multi_point_input(self, fitted):
        model, queries = fitted
        server = ModelServer(model)
        with pytest.raises(ConfigurationError, match="single query point"):
            server.submit(queries[:2])

    def test_bad_max_batch_size(self, fitted):
        model, _ = fitted
        with pytest.raises(ConfigurationError, match="max_batch_size"):
            ModelServer(model, max_batch_size=0)

    def test_flush_on_empty_queue_is_a_noop(self, fitted):
        model, _ = fitted
        server = ModelServer(model)
        assert server.flush() == 0


class TestServeEvalDriver:
    def test_runs_and_reports_every_method(self):
        result = run_serve_eval(
            n_reference=80,
            n_labeled=20,
            n_queries=12,
            batch_size=4,
            parity_sample=4,
            seed=0,
        )
        assert [r.method for r in result.reports] == list(SERVING_METHODS)
        for report in result.reports:
            assert report.single_qps > 0 and report.batched_qps > 0
        exact = next(r for r in result.reports if r.method == "exact")
        assert exact.max_abs_dev_vs_exact == pytest.approx(0.0, abs=1e-12)
        assert len(result.to_rows()) == len(SERVING_METHODS)
        assert len(result.headers()) == 5

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError, match="n_labeled"):
            run_serve_eval(n_reference=10, n_labeled=10)
        with pytest.raises(ConfigurationError, match="unknown serving method"):
            run_serve_eval(n_reference=30, n_labeled=5, methods="krige")


class TestServeEvalCli:
    def test_verb_registered_with_defaults(self):
        args = build_parser().parse_args(["serve-eval"])
        assert args.command == "serve-eval"
        assert args.n_ref == 2000 and args.queries == 256
        assert args.method == "all" and args.graph == "knn"
        assert callable(args.handler)

    def test_small_run_prints_table(self, capsys):
        code = main(
            [
                "serve-eval", "--n-ref", "80", "--n-labeled", "20",
                "--queries", "12", "--batch-size", "4",
                "--parity-sample", "4", "--method", "nw", "--seed", "0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "serving evaluation" in out
        assert "nw" in out

    def test_driver_configuration_error_exits_two(self, capsys):
        code = main(
            ["serve-eval", "--n-ref", "10", "--n-labeled", "10", "--seed", "0"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_csv_twin_written(self, capsys, tmp_path):
        csv_path = tmp_path / "serve.csv"
        code = main(
            [
                "serve-eval", "--n-ref", "60", "--n-labeled", "15",
                "--queries", "8", "--batch-size", "4", "--method", "nw",
                "--parity-sample", "0", "--seed", "0",
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        assert "method" in csv_path.read_text().splitlines()[0]

    def test_progress_jsonl_written(self, tmp_path, capsys):
        jsonl = tmp_path / "progress.jsonl"
        code = main(
            [
                "serve-eval", "--n-ref", "60", "--n-labeled", "15",
                "--queries", "8", "--batch-size", "4", "--method", "nw",
                "--parity-sample", "0", "--seed", "0",
                "--progress-jsonl", str(jsonl),
            ]
        )
        assert code == 0
        lines = jsonl.read_text().splitlines()
        assert lines, "progress JSONL should not be empty"
