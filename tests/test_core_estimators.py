"""Unit tests for the estimator-style API."""

import numpy as np
import pytest

from repro.core.estimators import (
    GraphSSLClassifier,
    GraphSSLRegressor,
    HardLabelPropagation,
    NadarayaWatsonClassifier,
    NadarayaWatsonRegressor,
    SoftLabelPropagation,
)
from repro.core.hard import solve_hard_criterion
from repro.datasets.synthetic import make_synthetic_dataset
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule


@pytest.fixture
def data():
    return make_synthetic_dataset(60, 15, seed=42)


class TestGraphSSLRegressor:
    def test_matches_functional_core(self, data):
        model = GraphSSLRegressor(lam=0.0, bandwidth="paper")
        model.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)
        bandwidth = paper_bandwidth_rule(60, 5)
        graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
        expected = solve_hard_criterion(graph.weights, data.y_labeled)
        np.testing.assert_allclose(
            model.predict(), expected.unlabeled_scores, atol=1e-10
        )

    def test_explicit_float_bandwidth(self, data):
        model = GraphSSLRegressor(bandwidth=0.5)
        model.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)
        assert model.bandwidth_ == 0.5

    @pytest.mark.parametrize("rule", ["paper", "median", "scott", "silverman", "knn"])
    def test_named_bandwidth_rules(self, data, rule):
        model = GraphSSLRegressor(bandwidth=rule)
        model.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)
        assert model.bandwidth_ > 0

    def test_unknown_bandwidth_rule_raises(self, data):
        model = GraphSSLRegressor(bandwidth="oracle")
        with pytest.raises(ConfigurationError, match="bandwidth"):
            model.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            GraphSSLRegressor().predict()

    def test_fit_predict_shortcut(self, data):
        a = GraphSSLRegressor(lam=0.1).fit_predict(
            data.x_labeled, data.y_labeled, data.x_unlabeled
        )
        b = (
            GraphSSLRegressor(lam=0.1)
            .fit(data.x_labeled, data.y_labeled, data.x_unlabeled)
            .predict()
        )
        np.testing.assert_allclose(a, b)

    def test_dimension_mismatch_raises(self, data):
        with pytest.raises(DataValidationError, match="columns"):
            GraphSSLRegressor().fit(
                data.x_labeled, data.y_labeled, data.x_unlabeled[:, :3]
            )

    def test_scores_property(self, data):
        model = GraphSSLRegressor().fit(
            data.x_labeled, data.y_labeled, data.x_unlabeled
        )
        assert model.scores_.shape == (75,)
        np.testing.assert_array_equal(model.scores_[:60], data.y_labeled)

    def test_knn_graph_construction(self, data):
        model = GraphSSLRegressor(graph="knn", graph_params={"k": 10})
        model.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)
        assert model.graph_.construction == "knn"
        assert model.predict().shape == (15,)

    def test_empty_unlabeled_ok(self, data):
        model = GraphSSLRegressor()
        model.fit(data.x_labeled, data.y_labeled, np.empty((0, 5)))
        assert model.predict().shape == (0,)


class TestHardSoftWrappers:
    def test_hard_rejects_lam(self):
        with pytest.raises(ConfigurationError):
            HardLabelPropagation(lam=0.1)

    def test_hard_is_lam_zero(self, data):
        hard = HardLabelPropagation().fit_predict(
            data.x_labeled, data.y_labeled, data.x_unlabeled
        )
        generic = GraphSSLRegressor(lam=0.0).fit_predict(
            data.x_labeled, data.y_labeled, data.x_unlabeled
        )
        np.testing.assert_allclose(hard, generic)

    def test_soft_requires_positive_lam(self):
        with pytest.raises(DataValidationError):
            SoftLabelPropagation(0.0)

    def test_soft_differs_from_hard(self, data):
        hard = HardLabelPropagation().fit_predict(
            data.x_labeled, data.y_labeled, data.x_unlabeled
        )
        soft = SoftLabelPropagation(1.0).fit_predict(
            data.x_labeled, data.y_labeled, data.x_unlabeled
        )
        assert np.max(np.abs(hard - soft)) > 1e-4


class TestClassifier:
    def test_requires_binary_labels(self, data):
        model = GraphSSLClassifier()
        with pytest.raises(DataValidationError, match="binary"):
            model.fit(data.x_labeled, data.y_labeled + 0.5, data.x_unlabeled)

    def test_proba_in_unit_interval(self, data):
        model = GraphSSLClassifier().fit(
            data.x_labeled, data.y_labeled, data.x_unlabeled
        )
        proba = model.predict_proba()
        assert proba.min() >= 0.0 and proba.max() <= 1.0

    def test_predictions_are_binary(self, data):
        model = GraphSSLClassifier().fit(
            data.x_labeled, data.y_labeled, data.x_unlabeled
        )
        assert set(np.unique(model.predict())) <= {0.0, 1.0}

    def test_threshold_consistency(self, data):
        model = GraphSSLClassifier().fit(
            data.x_labeled, data.y_labeled, data.x_unlabeled
        )
        np.testing.assert_array_equal(
            model.predict(), (model.decision_scores() >= 0.5).astype(float)
        )


class TestNadarayaWatsonEstimators:
    def test_regressor_matches_function(self, data):
        from repro.core.nadaraya_watson import nadaraya_watson

        model = NadarayaWatsonRegressor(bandwidth=0.6)
        got = model.fit(data.x_labeled, data.y_labeled).predict(data.x_unlabeled)
        expected = nadaraya_watson(
            data.x_labeled, data.y_labeled, data.x_unlabeled, bandwidth=0.6
        )
        np.testing.assert_allclose(got, expected)

    def test_predict_before_fit_raises(self, data):
        with pytest.raises(NotFittedError):
            NadarayaWatsonRegressor().predict(data.x_unlabeled)

    def test_paper_bandwidth_resolved_on_labeled_count(self, data):
        model = NadarayaWatsonRegressor(bandwidth="paper")
        model.fit(data.x_labeled, data.y_labeled)
        assert model.bandwidth_ == pytest.approx(paper_bandwidth_rule(60, 5))

    def test_classifier_proba_and_labels(self, data):
        model = NadarayaWatsonClassifier(bandwidth=0.6)
        model.fit(data.x_labeled, data.y_labeled)
        proba = model.predict_proba(data.x_unlabeled)
        assert proba.min() >= 0.0 and proba.max() <= 1.0
        np.testing.assert_array_equal(
            model.predict(data.x_unlabeled), (proba >= 0.5).astype(float)
        )

    def test_classifier_requires_binary(self, data):
        with pytest.raises(DataValidationError, match="binary"):
            NadarayaWatsonClassifier().fit(data.x_labeled, data.q_labeled)
