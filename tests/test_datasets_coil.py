"""Unit tests for the COIL-like procedural image dataset."""

import numpy as np
import pytest

from repro.datasets.coil import make_coil_like
from repro.exceptions import ConfigurationError, DataValidationError


@pytest.fixture(scope="module")
def dataset():
    return make_coil_like(images_per_class=50, seed=0)


class TestStructure:
    def test_paper_geometry(self, dataset):
        assert dataset.images.shape == (300, 256)
        assert dataset.image_size == 16
        assert dataset.n_samples == 300

    def test_six_balanced_classes(self, dataset):
        values, counts = np.unique(dataset.class_labels, return_counts=True)
        np.testing.assert_array_equal(values, np.arange(6))
        np.testing.assert_array_equal(counts, np.full(6, 50))

    def test_binary_grouping_first_three_vs_last_three(self, dataset):
        np.testing.assert_array_equal(
            dataset.binary_labels, (dataset.class_labels >= 3).astype(float)
        )

    def test_objects_match_classes(self, dataset):
        np.testing.assert_array_equal(
            dataset.class_labels, dataset.object_ids // 4
        )

    def test_angles_in_range(self, dataset):
        assert dataset.angles.min() >= 0.0
        assert dataset.angles.max() < 2 * np.pi

    def test_full_size_counts(self):
        data = make_coil_like(images_per_class=250, seed=1)
        assert data.n_samples == 1500
        # 288 available per class, 38 discarded.
        values, counts = np.unique(data.class_labels, return_counts=True)
        np.testing.assert_array_equal(counts, np.full(6, 250))

    def test_image_accessor(self, dataset):
        img = dataset.image(0)
        assert img.shape == (16, 16)
        np.testing.assert_array_equal(img.ravel(), dataset.images[0])

    def test_shuffled_not_grouped(self, dataset):
        """Rows must be shuffled (splits rely on random fold assignment
        being meaningful even without extra shuffling)."""
        first_block = dataset.class_labels[:50]
        assert len(np.unique(first_block)) > 1


class TestSignalStructure:
    def test_same_object_adjacent_angles_are_similar(self, dataset):
        """The manifold property: images of one object at nearby angles
        are closer than images of different objects on average."""
        images = dataset.images
        object_ids = dataset.object_ids
        angles = dataset.angles
        within = []
        for obj in np.unique(object_ids)[:6]:
            members = np.flatnonzero(object_ids == obj)
            members = members[np.argsort(angles[members])]
            pairs = zip(members, members[1:])
            within.extend(
                np.linalg.norm(images[i] - images[j]) for i, j in pairs
            )
        rng = np.random.default_rng(0)
        cross = []
        for _ in range(300):
            i, j = rng.integers(0, dataset.n_samples, 2)
            if object_ids[i] != object_ids[j]:
                cross.append(np.linalg.norm(images[i] - images[j]))
        assert np.mean(within) < 0.5 * np.mean(cross)

    def test_noise_increases_distances(self):
        clean = make_coil_like(images_per_class=20, noise=0.0, seed=3)
        noisy = make_coil_like(images_per_class=20, noise=0.5, seed=3)
        assert noisy.images.std() > clean.images.std()

    def test_reproducible(self):
        a = make_coil_like(images_per_class=10, seed=5)
        b = make_coil_like(images_per_class=10, seed=5)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.class_labels, b.class_labels)

    def test_confusable_pairs_reduce_separability(self):
        plain = make_coil_like(images_per_class=30, seed=4, confusable_pairs=0)
        confused = make_coil_like(
            images_per_class=30, seed=4, confusable_pairs=12, confusable_jitter=0.005
        )

        def cross_group_min_distance(ds):
            group0 = ds.images[ds.binary_labels == 0.0]
            group1 = ds.images[ds.binary_labels == 1.0]
            from repro.kernels.base import pairwise_sq_distances

            return np.sqrt(pairwise_sq_distances(group0, group1).min())

        assert cross_group_min_distance(confused) < cross_group_min_distance(plain)


class TestValidation:
    def test_invalid_images_per_class(self):
        with pytest.raises(DataValidationError):
            make_coil_like(images_per_class=300)  # > 288 available

    def test_invalid_image_size(self):
        with pytest.raises(DataValidationError):
            make_coil_like(image_size=2)

    def test_invalid_shared_structure(self):
        with pytest.raises(ConfigurationError):
            make_coil_like(shared_structure=1.0)

    def test_invalid_noise(self):
        with pytest.raises(ConfigurationError):
            make_coil_like(noise=-0.1)

    def test_invalid_confusable_pairs(self):
        with pytest.raises(ConfigurationError):
            make_coil_like(confusable_pairs=13)

    def test_invalid_lighting(self):
        with pytest.raises(ConfigurationError):
            make_coil_like(lighting_amplitude=1.0)
