"""Unit tests for the toy datasets."""

import numpy as np
import pytest

from repro.datasets.toy import (
    concentric_circles,
    constant_input_toy,
    gaussian_blobs,
    swiss_roll,
    two_moons,
)
from repro.exceptions import DataValidationError


class TestConstantInputToy:
    def test_inputs_all_identical(self):
        toy = constant_input_toy(5, 3, value=0.7, seed=0)
        assert toy.x_all.shape == (8, 2)
        assert np.all(toy.x_all == 0.7)

    def test_expected_score_is_label_mean(self):
        toy = constant_input_toy(10, 4, seed=1)
        assert toy.expected_unlabeled_score == pytest.approx(toy.y_labeled.mean())

    def test_paper_inverse_entries(self):
        toy = constant_input_toy(5, 3, seed=2)
        # (n+1)/(n(m+n)) and 1/(n(m+n)) with n=5, m=3.
        assert toy.expected_inverse_diagonal == pytest.approx(6 / 40)
        assert toy.expected_inverse_off_diagonal == pytest.approx(1 / 40)

    def test_inverse_formula_verified_against_numpy(self):
        """The paper's explicit (D22-W22)^{-1} matches numerical inversion."""
        n, m = 7, 4
        toy = constant_input_toy(n, m, seed=3)
        total = n + m
        w = np.ones((total, total))
        grounded = np.diag(np.full(m, float(total - 1))) - (
            np.ones((m, m)) - np.eye(m)
        )
        inverse = np.linalg.inv(grounded)
        expected = np.full((m, m), toy.expected_inverse_off_diagonal)
        np.fill_diagonal(expected, toy.expected_inverse_diagonal)
        np.testing.assert_allclose(inverse, expected, atol=1e-12)

    def test_invalid_sizes(self):
        with pytest.raises(DataValidationError):
            constant_input_toy(0, 3)
        with pytest.raises(DataValidationError):
            constant_input_toy(3, 0)


class TestTwoMoons:
    def test_shapes_and_labels(self):
        x, y = two_moons(101, seed=0)
        assert x.shape == (101, 2)
        assert set(np.unique(y)) == {0.0, 1.0}
        assert abs(y.sum() - 50.5) <= 0.5

    def test_noiseless_points_on_circles(self):
        x, y = two_moons(200, noise=0.0, seed=1)
        upper = x[y == 0.0]
        radii = np.linalg.norm(upper, axis=1)
        np.testing.assert_allclose(radii, np.ones_like(radii), atol=1e-10)

    def test_rows_shuffled(self):
        _, y = two_moons(100, seed=2)
        assert len(np.unique(y[:10])) > 1


class TestCircles:
    def test_radii_separated(self):
        x, y = concentric_circles(300, radii=(1.0, 3.0), noise=0.0, seed=0)
        inner = np.linalg.norm(x[y == 0.0], axis=1)
        outer = np.linalg.norm(x[y == 1.0], axis=1)
        assert inner.max() < outer.min()

    def test_invalid_radii(self):
        with pytest.raises(DataValidationError):
            concentric_circles(10, radii=(2.0, 1.0))


class TestBlobs:
    def test_labels_match_centers(self):
        centers = np.array([[0.0, 0.0], [100.0, 0.0]])
        x, y = gaussian_blobs(200, centers=centers, std=0.5, seed=0)
        for label, center in enumerate(centers):
            members = x[y == float(label)]
            np.testing.assert_allclose(
                members.mean(axis=0), center, atol=0.5
            )

    def test_default_centers(self):
        x, y = gaussian_blobs(50, seed=1)
        assert x.shape == (50, 2)
        assert set(np.unique(y)) <= {0.0, 1.0, 2.0}

    def test_invalid_centers_shape(self):
        with pytest.raises(DataValidationError):
            gaussian_blobs(10, centers=np.zeros(3))


class TestSwissRoll:
    def test_shape_and_manifold_relation(self):
        x, t = swiss_roll(500, noise=0.0, seed=0)
        assert x.shape == (500, 3)
        # x = (t cos t, h, t sin t): radius equals the manifold coordinate.
        radii = np.sqrt(x[:, 0] ** 2 + x[:, 2] ** 2)
        np.testing.assert_allclose(radii, t, atol=1e-10)

    def test_minimum_samples(self):
        with pytest.raises(DataValidationError):
            swiss_roll(1)
