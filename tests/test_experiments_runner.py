"""Unit tests for the replicate runner."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.runner import run_replicates


class TestRunReplicates:
    def test_aggregates_means(self):
        summary = run_replicates(
            lambda rng: {"x": 2.0, "y": -1.0}, n_replicates=5, seed=0
        )
        assert summary.n_replicates == 5
        assert summary.mean("x") == pytest.approx(2.0)
        assert summary.mean("y") == pytest.approx(-1.0)
        assert summary.std("x") == 0.0
        assert summary.sem("x") == 0.0

    def test_std_and_sem(self):
        values = iter([1.0, 3.0])
        summary = run_replicates(
            lambda rng: {"v": next(values)}, n_replicates=2, seed=0
        )
        assert summary.mean("v") == pytest.approx(2.0)
        assert summary.std("v") == pytest.approx(np.std([1.0, 3.0], ddof=1))
        assert summary.sem("v") == pytest.approx(summary.std("v") / np.sqrt(2))

    def test_single_replicate_zero_std(self):
        summary = run_replicates(lambda rng: {"v": 7.0}, n_replicates=1, seed=0)
        assert summary.std("v") == 0.0

    def test_replicates_receive_independent_streams(self):
        draws = []
        run_replicates(
            lambda rng: draws.append(rng.random()) or {"v": 0.0},
            n_replicates=4,
            seed=1,
        )
        assert len(set(draws)) == 4

    def test_reproducible_from_seed(self):
        def replicate(rng):
            return {"v": float(rng.random())}

        a = run_replicates(replicate, n_replicates=3, seed=42)
        b = run_replicates(replicate, n_replicates=3, seed=42)
        assert a.means == b.means

    def test_inconsistent_keys_raise(self):
        keys = iter([{"a": 1.0}, {"b": 1.0}])

        with pytest.raises(ConfigurationError, match="inconsistent"):
            run_replicates(lambda rng: next(keys), n_replicates=2, seed=0)

    def test_invalid_count_raises(self):
        with pytest.raises(ConfigurationError):
            run_replicates(lambda rng: {"v": 0.0}, n_replicates=0)
