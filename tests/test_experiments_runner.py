"""Unit tests for the replicate runner."""

import math

import numpy as np
import pytest

from repro import obs
from repro.exceptions import ConfigurationError, NonFiniteMetricError
from repro.experiments.runner import NonFiniteMetricWarning, run_replicates


class TestRunReplicates:
    def test_aggregates_means(self):
        summary = run_replicates(
            lambda rng: {"x": 2.0, "y": -1.0}, n_replicates=5, seed=0
        )
        assert summary.n_replicates == 5
        assert summary.mean("x") == pytest.approx(2.0)
        assert summary.mean("y") == pytest.approx(-1.0)
        assert summary.std("x") == 0.0
        assert summary.sem("x") == 0.0

    def test_std_and_sem(self):
        values = iter([1.0, 3.0])
        summary = run_replicates(
            lambda rng: {"v": next(values)}, n_replicates=2, seed=0
        )
        assert summary.mean("v") == pytest.approx(2.0)
        assert summary.std("v") == pytest.approx(np.std([1.0, 3.0], ddof=1))
        assert summary.sem("v") == pytest.approx(summary.std("v") / np.sqrt(2))

    def test_single_replicate_zero_std(self):
        summary = run_replicates(lambda rng: {"v": 7.0}, n_replicates=1, seed=0)
        assert summary.std("v") == 0.0

    def test_replicates_receive_independent_streams(self):
        draws = []
        run_replicates(
            lambda rng: draws.append(rng.random()) or {"v": 0.0},
            n_replicates=4,
            seed=1,
        )
        assert len(set(draws)) == 4

    def test_reproducible_from_seed(self):
        def replicate(rng):
            return {"v": float(rng.random())}

        a = run_replicates(replicate, n_replicates=3, seed=42)
        b = run_replicates(replicate, n_replicates=3, seed=42)
        assert a.means == b.means

    def test_inconsistent_keys_raise(self):
        keys = iter([{"a": 1.0}, {"b": 1.0}])

        with pytest.raises(ConfigurationError, match="inconsistent"):
            run_replicates(lambda rng: next(keys), n_replicates=2, seed=0)

    def test_invalid_count_raises(self):
        with pytest.raises(ConfigurationError):
            run_replicates(lambda rng: {"v": 0.0}, n_replicates=0)


class TestNonFiniteValues:
    """Regression tests: a NaN replicate used to poison the aggregate
    silently; now strict mode raises and non-strict mode warns + counts."""

    def test_strict_raises_naming_metric_and_index(self):
        values = iter([1.0, math.nan, 2.0])
        with pytest.raises(NonFiniteMetricError, match=r"replicate 1 .* 'rmse'"):
            run_replicates(
                lambda rng: {"rmse": next(values)}, n_replicates=3, seed=0
            )

    def test_strict_is_the_default_for_inf(self):
        with pytest.raises(NonFiniteMetricError):
            run_replicates(lambda rng: {"v": math.inf}, n_replicates=1, seed=0)

    def test_non_strict_warns_and_counts(self):
        values = iter([1.0, math.nan, 2.0])
        with obs.use_registry() as registry:
            with pytest.warns(NonFiniteMetricWarning, match="replicate 1"):
                summary = run_replicates(
                    lambda rng: {"rmse": next(values)},
                    n_replicates=3,
                    seed=0,
                    strict=False,
                )
        assert registry.counter("replicates.nonfinite").value == 1
        assert math.isnan(summary.means["rmse"])
        assert summary.values["rmse"][0] == 1.0
        assert summary.values["rmse"][2] == 2.0

    def test_finite_runs_leave_counter_untouched(self):
        with obs.use_registry() as registry:
            run_replicates(lambda rng: {"v": 1.0}, n_replicates=2, seed=0)
        assert "replicates.nonfinite" not in registry

    def test_strict_applies_in_parallel_mode_too(self):
        with pytest.raises(NonFiniteMetricError):
            run_replicates(_nan_replicate, n_replicates=4, seed=0, n_jobs=2)


def _nan_replicate(rng):
    """Module-level (picklable) replicate that always returns NaN."""
    return {"v": math.nan}
