"""Tests for the lambda curve, graph persistence, and markdown tables."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError
from repro.experiments.lambda_curve import run_lambda_curve
from repro.experiments.report import markdown_table
from repro.graph.similarity import SimilarityGraph, full_kernel_graph, knn_graph


class TestLambdaCurve:
    @pytest.fixture(scope="class")
    def curve(self):
        return run_lambda_curve(
            n_labeled=60, n_unlabeled=15,
            lambdas=(0.0, 0.01, 0.1, 1.0, 100.0),
            n_replicates=10, seed=0,
        )

    def test_anchors(self, curve):
        assert curve.rmse[0] == curve.hard_rmse
        assert curve.interpolates_anchors

    def test_monotone_overall(self, curve):
        assert curve.rmse[-1] > curve.rmse[0]

    def test_rows(self, curve):
        rows = curve.to_rows()
        assert len(rows) == 5
        assert len(rows[0]) == len(curve.headers())

    def test_grid_validation(self):
        with pytest.raises(ConfigurationError):
            run_lambda_curve(lambdas=(0.01, 0.1), n_replicates=1)
        with pytest.raises(ConfigurationError):
            run_lambda_curve(lambdas=(0.0, 1.0, 0.5), n_replicates=1)


class TestGraphPersistence:
    def test_dense_roundtrip(self, rng, tmp_path):
        x = rng.normal(size=(12, 3))
        graph = full_kernel_graph(x, bandwidth=0.7)
        path = graph.save_npz(tmp_path / "g" / "graph.npz")
        loaded = SimilarityGraph.load_npz(path)
        np.testing.assert_allclose(loaded.dense_weights(), graph.dense_weights())
        assert loaded.kernel_name == "gaussian"
        assert loaded.bandwidth == 0.7
        assert loaded.construction == "full"
        assert not loaded.is_sparse

    def test_sparse_roundtrip(self, rng, tmp_path):
        x = rng.normal(size=(25, 2))
        graph = knn_graph(x, k=4, bandwidth=1.0)
        path = graph.save_npz(tmp_path / "knn.npz")
        loaded = SimilarityGraph.load_npz(path)
        assert loaded.is_sparse
        np.testing.assert_allclose(
            loaded.dense_weights(), graph.dense_weights()
        )
        assert loaded.params == {"k": 4, "mode": "union", "construction": "dense"}

    def test_loaded_graph_solves_identically(self, rng, tmp_path):
        from repro.core.hard import solve_hard_criterion

        x = rng.normal(size=(15, 2))
        y = rng.normal(size=8)
        graph = full_kernel_graph(x, bandwidth=1.0)
        original = solve_hard_criterion(graph.weights, y)
        loaded = SimilarityGraph.load_npz(graph.save_npz(tmp_path / "g.npz"))
        restored = solve_hard_criterion(loaded.weights, y)
        np.testing.assert_allclose(restored.scores, original.scores)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataValidationError, match="no such file"):
            SimilarityGraph.load_npz(tmp_path / "missing.npz")

    def test_wrong_archive_rejected(self, tmp_path, rng):
        path = tmp_path / "other.npz"
        np.savez(path, whatever=rng.normal(size=3))
        with pytest.raises(DataValidationError, match="not a SimilarityGraph"):
            SimilarityGraph.load_npz(path)


class TestMarkdownTable:
    def test_structure(self):
        table = markdown_table(["a", "b"], [[1, 2.5]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2.5000 |"

    def test_row_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            markdown_table(["a"], [[1, 2]])

    def test_empty_headers_raise(self):
        with pytest.raises(ConfigurationError):
            markdown_table([], [])
