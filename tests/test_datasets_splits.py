"""Unit tests for the transductive split protocols."""

import numpy as np
import pytest

from repro.datasets.splits import (
    COIL_SETTINGS,
    kfold_indices,
    paper_coil_protocol,
    transductive_splits,
)
from repro.exceptions import ConfigurationError, DataValidationError


class TestKFold:
    def test_partition_property(self):
        folds = kfold_indices(103, 5, seed=0)
        assert len(folds) == 5
        combined = np.sort(np.concatenate(folds))
        np.testing.assert_array_equal(combined, np.arange(103))

    def test_nearly_equal_sizes(self):
        folds = kfold_indices(103, 5, seed=0)
        sizes = [len(f) for f in folds]
        assert max(sizes) - min(sizes) <= 1

    def test_shuffled(self):
        folds = kfold_indices(100, 5, seed=1)
        # A contiguous-chunk split would make fold 0 == 0..19.
        assert not np.array_equal(folds[0], np.arange(20))

    def test_reproducible(self):
        a = kfold_indices(50, 5, seed=3)
        b = kfold_indices(50, 5, seed=3)
        for fa, fb in zip(a, b):
            np.testing.assert_array_equal(fa, fb)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            kfold_indices(10, 1)
        with pytest.raises(DataValidationError):
            kfold_indices(3, 5)


class TestTransductiveSplits:
    def test_yields_n_folds_rotations(self):
        splits = list(transductive_splits(50, n_folds=5, labeled_folds=4, seed=0))
        assert len(splits) == 5

    def test_labeled_unlabeled_partition(self):
        for labeled, unlabeled in transductive_splits(
            53, n_folds=5, labeled_folds=4, seed=0
        ):
            combined = np.sort(np.concatenate([labeled, unlabeled]))
            np.testing.assert_array_equal(combined, np.arange(53))

    def test_ratio_80_20(self):
        for labeled, unlabeled in transductive_splits(
            100, n_folds=5, labeled_folds=4, seed=0
        ):
            assert len(labeled) == 80
            assert len(unlabeled) == 20

    def test_ratio_20_80(self):
        for labeled, unlabeled in transductive_splits(
            100, n_folds=5, labeled_folds=1, seed=0
        ):
            assert len(labeled) == 20
            assert len(unlabeled) == 80

    def test_every_sample_predicted_once_in_8020(self):
        """With labeled_folds = n_folds - 1 the unlabeled sets tile the data."""
        unlabeled_all = np.concatenate(
            [
                u
                for _, u in transductive_splits(60, n_folds=5, labeled_folds=4, seed=0)
            ]
        )
        np.testing.assert_array_equal(np.sort(unlabeled_all), np.arange(60))

    def test_invalid_labeled_folds(self):
        with pytest.raises(ConfigurationError):
            list(transductive_splits(50, n_folds=5, labeled_folds=5, seed=0))
        with pytest.raises(ConfigurationError):
            list(transductive_splits(50, n_folds=5, labeled_folds=0, seed=0))


class TestStratifiedSplits:
    def test_folds_partition(self, rng):
        from repro.datasets.splits import stratified_kfold_indices

        labels = rng.integers(0, 3, 97).astype(float)
        folds = stratified_kfold_indices(labels, 5, seed=0)
        combined = np.sort(np.concatenate(folds))
        np.testing.assert_array_equal(combined, np.arange(97))

    def test_class_balance_preserved(self, rng):
        from repro.datasets.splits import stratified_kfold_indices

        labels = np.concatenate([np.zeros(60), np.ones(40)])
        folds = stratified_kfold_indices(labels, 5, seed=1)
        for fold in folds:
            ones = labels[fold].sum()
            assert 7 <= ones <= 9  # 40/5 = 8 +- 1

    def test_validation(self):
        from repro.datasets.splits import stratified_kfold_indices

        with pytest.raises(ConfigurationError):
            stratified_kfold_indices(np.zeros(10), 1)
        with pytest.raises(DataValidationError):
            stratified_kfold_indices(np.zeros(3), 5)

    def test_labeled_split_fraction(self, rng):
        from repro.datasets.splits import stratified_labeled_split

        labels = rng.integers(0, 2, 200).astype(float)
        labeled, unlabeled = stratified_labeled_split(labels, 0.2, seed=0)
        assert abs(len(labeled) - 40) <= 2
        np.testing.assert_array_equal(
            np.sort(np.concatenate([labeled, unlabeled])), np.arange(200)
        )

    def test_labeled_split_covers_every_class(self, rng):
        from repro.datasets.splits import stratified_labeled_split

        # A rare class with 3 members at a tiny labeled fraction.
        labels = np.concatenate([np.zeros(97), np.full(3, 1.0)])
        labeled, _ = stratified_labeled_split(labels, 0.05, seed=1)
        assert 1.0 in labels[labeled]

    def test_labeled_split_validation(self):
        from repro.datasets.splits import stratified_labeled_split

        with pytest.raises(ConfigurationError):
            stratified_labeled_split(np.zeros(10), 0.0)
        with pytest.raises(ConfigurationError):
            stratified_labeled_split(np.zeros(2), 0.99)


class TestPaperProtocol:
    def test_settings_table(self):
        assert COIL_SETTINGS["80/20"] == (5, 4)
        assert COIL_SETTINGS["20/80"] == (5, 1)
        assert COIL_SETTINGS["10/90"] == (10, 1)

    @pytest.mark.parametrize(
        "setting,expected_labeled_fraction",
        [("80/20", 0.8), ("20/80", 0.2), ("10/90", 0.1)],
    )
    def test_ratios(self, setting, expected_labeled_fraction):
        n = 100
        for labeled, unlabeled in paper_coil_protocol(n, setting, repeats=1, seed=0):
            assert len(labeled) == pytest.approx(n * expected_labeled_fraction, abs=1)

    def test_experiment_counts_match_paper(self):
        """100 repeats give 500 experiments (5 folds) or 1000 (10 folds)."""
        count_8020 = sum(1 for _ in paper_coil_protocol(50, "80/20", repeats=100, seed=0))
        assert count_8020 == 500
        count_1090 = sum(1 for _ in paper_coil_protocol(50, "10/90", repeats=100, seed=0))
        assert count_1090 == 1000

    def test_repeats_reshuffle(self):
        splits = list(paper_coil_protocol(40, "80/20", repeats=2, seed=0))
        first, second = splits[0][0], splits[5][0]
        assert not np.array_equal(first, second)

    def test_unknown_setting_raises(self):
        with pytest.raises(ConfigurationError, match="unknown setting"):
            list(paper_coil_protocol(50, "50/50", repeats=1))

    def test_invalid_repeats_raises(self):
        with pytest.raises(ConfigurationError):
            list(paper_coil_protocol(50, "80/20", repeats=0))
