"""Tests for isotonic calibration and threshold selection."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError, NotFittedError
from repro.metrics.classification import auc
from repro.metrics.isotonic import IsotonicCalibrator, pav_isotonic
from repro.metrics.thresholds import best_f1_threshold, youden_threshold


class TestPav:
    def test_already_monotone_unchanged(self):
        values = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(pav_isotonic(values), values)

    def test_single_violation_pools(self):
        got = pav_isotonic([1.0, 3.0, 2.0])
        np.testing.assert_allclose(got, [1.0, 2.5, 2.5])

    def test_fully_decreasing_pools_to_mean(self):
        values = np.array([5.0, 4.0, 3.0, 2.0])
        np.testing.assert_allclose(pav_isotonic(values), np.full(4, 3.5))

    def test_output_is_monotone(self, rng):
        values = rng.normal(size=50)
        fitted = pav_isotonic(values)
        assert np.all(np.diff(fitted) >= -1e-12)

    def test_weighted_mean_respected(self):
        got = pav_isotonic([2.0, 0.0], weights=[3.0, 1.0])
        np.testing.assert_allclose(got, [1.5, 1.5])

    def test_is_least_squares_optimal(self, rng):
        """PAV beats random monotone candidates in squared error."""
        values = rng.normal(size=12)
        fitted = pav_isotonic(values)
        pav_error = np.sum((fitted - values) ** 2)
        for _ in range(50):
            candidate = np.sort(rng.normal(size=12))
            assert np.sum((candidate - values) ** 2) >= pav_error - 1e-9

    def test_mean_preserved(self, rng):
        """Pooling preserves the (weighted) mean."""
        values = rng.normal(size=30)
        assert pav_isotonic(values).mean() == pytest.approx(values.mean())

    def test_validation(self):
        with pytest.raises(DataValidationError):
            pav_isotonic([1.0, 2.0], weights=[1.0, -1.0])


class TestIsotonicCalibrator:
    def test_transform_is_monotone_and_keeps_auc_close(self, rng):
        scores = rng.normal(size=200)
        y = (rng.random(200) < 1 / (1 + np.exp(-3 * scores))).astype(float)
        y[:2] = [0.0, 1.0]
        calibrator = IsotonicCalibrator().fit(scores, y)
        calibrated = calibrator.transform(scores)
        # Monotone: ordering never reverses (ties allowed).
        order = np.argsort(scores)
        assert np.all(np.diff(calibrated[order]) >= -1e-12)
        # AUC moves only through tie credit in pooled blocks — never far.
        assert auc(y, calibrated) >= auc(y, scores) - 0.02

    def test_improves_calibration_of_shrunk_scores(self, rng):
        """Shrunk (soft-criterion-like) scores are recalibrated."""
        from repro.metrics.regression import calibration_error

        q = rng.uniform(0.05, 0.95, size=3000)
        y = (rng.random(3000) < q).astype(float)
        shrunk = 0.5 + 0.1 * (q - 0.5)  # badly under-dispersed
        before = calibration_error(y, np.clip(shrunk, 0, 1))
        calibrated = IsotonicCalibrator().fit_transform(shrunk, y)
        after = calibration_error(y, np.clip(calibrated, 0, 1))
        assert after < before

    def test_out_of_range_clamped(self, rng):
        calibrator = IsotonicCalibrator().fit([0.0, 1.0, 2.0], [0.0, 0.0, 1.0])
        low, high = calibrator.transform([-100.0, 100.0])
        assert low == pytest.approx(calibrator.transform([0.0])[0])
        assert high == pytest.approx(calibrator.transform([2.0])[0])

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            IsotonicCalibrator().transform([0.5])

    def test_length_mismatch(self):
        with pytest.raises(DataValidationError):
            IsotonicCalibrator().fit([0.1, 0.2], [1.0])

    def test_repairs_soft_criterion_accuracy(self):
        """End to end: isotonic calibration on the labeled scores restores
        the soft criterion's threshold accuracy at large lambda."""
        from repro.core.soft import solve_soft_criterion
        from repro.datasets.synthetic import make_synthetic_dataset
        from repro.graph.similarity import full_kernel_graph
        from repro.kernels.bandwidth import paper_bandwidth_rule
        from repro.metrics.classification import accuracy

        raw_total, fixed_total = 0.0, 0.0
        for seed in range(5):
            data = make_synthetic_dataset(200, 100, seed=seed)
            bandwidth = paper_bandwidth_rule(200, 5)
            graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
            fit = solve_soft_criterion(
                graph.weights, data.y_labeled, 5.0, check_reachability=False
            )
            raw = (fit.unlabeled_scores >= 0.5).astype(float)
            calibrator = IsotonicCalibrator().fit(
                fit.labeled_scores, data.y_labeled
            )
            fixed = (
                calibrator.transform(fit.unlabeled_scores) >= 0.5
            ).astype(float)
            raw_total += accuracy(data.y_unlabeled, raw)
            fixed_total += accuracy(data.y_unlabeled, fixed)
        assert fixed_total > raw_total + 0.2  # a large, real repair


class TestThresholds:
    def test_youden_separable(self):
        y = np.array([0, 0, 0, 1, 1, 1], dtype=float)
        scores = np.array([0.1, 0.2, 0.3, 0.7, 0.8, 0.9])
        threshold = youden_threshold(y, scores)
        predictions = (scores >= threshold).astype(float)
        np.testing.assert_array_equal(predictions, y)

    def test_youden_on_shrunk_scores(self):
        """Scores centered far from 0.5 still get a usable threshold."""
        y = np.array([0, 0, 1, 1], dtype=float)
        scores = np.array([0.40, 0.41, 0.44, 0.45])
        threshold = youden_threshold(y, scores)
        predictions = (scores >= threshold).astype(float)
        np.testing.assert_array_equal(predictions, y)

    def test_best_f1_separable(self):
        y = np.array([0, 1, 1], dtype=float)
        scores = np.array([0.2, 0.6, 0.9])
        threshold = best_f1_threshold(y, scores)
        predictions = (scores >= threshold).astype(float)
        np.testing.assert_array_equal(predictions, y)

    def test_best_f1_constant_scores(self):
        assert best_f1_threshold([0.0, 1.0], [0.5, 0.5]) == 0.5

    def test_validation(self):
        with pytest.raises(DataValidationError):
            best_f1_threshold([0.0, 2.0], [0.1, 0.9])
        with pytest.raises(DataValidationError):
            best_f1_threshold([0.0], [0.1, 0.9])
