"""Unit tests for the unified solver dispatch."""

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import ConfigurationError, SingularSystemError
from repro.linalg.solvers import solve_spd, solve_square

METHODS = ["direct", "sparse", "cg", "jacobi", "gauss_seidel"]


def _spd(rng, n):
    a = rng.uniform(0, 1, size=(n, n))
    a = 0.5 * (a + a.T)
    np.fill_diagonal(a, a.sum(axis=1) + 1.0)
    return a


class TestSolveSquare:
    def test_dense(self, rng):
        a = rng.normal(size=(5, 5)) + 5 * np.eye(5)
        x = rng.normal(size=5)
        np.testing.assert_allclose(solve_square(a, a @ x), x, atol=1e-9)

    def test_sparse(self, rng):
        a = _spd(rng, 8)
        x = rng.normal(size=8)
        got = solve_square(sparse.csc_matrix(a), a @ x)
        np.testing.assert_allclose(got, x, atol=1e-9)

    def test_singular_dense_raises(self):
        with pytest.raises(SingularSystemError):
            solve_square(np.ones((3, 3)), np.ones(3))

    def test_singular_sparse_raises(self):
        a = sparse.csc_matrix(np.ones((3, 3)))
        with pytest.raises(SingularSystemError):
            solve_square(a, np.ones(3))


class TestSolveSpd:
    @pytest.mark.parametrize("method", METHODS)
    def test_all_methods_agree(self, rng, method):
        a = _spd(rng, 12)
        x = rng.normal(size=12)
        got = solve_spd(a, a @ x, method=method, tol=1e-12)
        np.testing.assert_allclose(got, x, atol=1e-7)

    def test_direct_on_sparse_input(self, rng):
        a = _spd(rng, 6)
        x = rng.normal(size=6)
        got = solve_spd(sparse.csr_matrix(a), a @ x, method="direct")
        np.testing.assert_allclose(got, x, atol=1e-9)

    def test_direct_falls_back_for_semidefinite(self, rng):
        """Indefinite-but-invertible input must still solve (LU fallback)."""
        a = np.diag([1.0, -2.0, 3.0])
        x = np.array([1.0, 2.0, 3.0])
        got = solve_spd(a, a @ x, method="direct")
        np.testing.assert_allclose(got, x, atol=1e-10)

    def test_unknown_method_raises(self, rng):
        a = _spd(rng, 3)
        with pytest.raises(ConfigurationError, match="unknown solver"):
            solve_spd(a, np.ones(3), method="quantum")

    def test_max_iter_forwarded(self, rng):
        from repro.exceptions import ConvergenceError

        a = _spd(rng, 20)
        with pytest.raises(ConvergenceError):
            solve_spd(a, rng.normal(size=20), method="cg", tol=1e-15, max_iter=1)


class TestSPDFactorization:
    def test_dense_cholesky_reused_across_rhs(self, rng):
        from repro.linalg.solvers import factorize_spd

        a = _spd(rng, 10)
        factor = factorize_spd(a)
        assert factor.method == "cholesky"
        assert factor.nnz is None and factor.fill_nnz is None
        block = rng.normal(size=(10, 3))
        np.testing.assert_allclose(a @ factor.solve(block), block, atol=1e-8)

    def test_sparse_reports_nnz_and_fill(self, rng):
        from repro.linalg.solvers import factorize_spd

        a = sparse.csr_matrix(_spd(rng, 15))
        factor = factorize_spd(a)
        assert factor.method == "sparse_lu"
        assert factor.nnz == a.nnz
        assert factor.fill_nnz >= factor.size  # L and U each carry a diagonal
        x = rng.normal(size=15)
        np.testing.assert_allclose(factor.solve(a @ x), x, atol=1e-8)

    def test_sparse_block_rhs(self, rng):
        from repro.linalg.solvers import factorize_spd

        dense = _spd(rng, 9)
        factor = factorize_spd(sparse.csr_matrix(dense))
        block = rng.normal(size=(9, 4))
        np.testing.assert_allclose(dense @ factor.solve(block), block, atol=1e-8)

    def test_singular_sparse_raises(self):
        from repro.linalg.solvers import factorize_spd

        with pytest.raises(SingularSystemError):
            factorize_spd(sparse.csr_matrix(np.ones((4, 4))))

    def test_singular_dense_raises(self):
        from repro.linalg.solvers import factorize_spd

        with pytest.raises(SingularSystemError):
            factorize_spd(np.ones((4, 4)))

    def test_info_carries_fill_stats(self, rng):
        from repro.linalg.solvers import factorize_spd

        a = sparse.csr_matrix(_spd(rng, 12))
        info = factorize_spd(a).info()
        assert info.method == "sparse_lu"
        assert info.nnz == a.nnz
        assert info.fill_nnz is not None

    def test_solve_spd_sparse_info_has_nnz(self, rng):
        a = sparse.csr_matrix(_spd(rng, 12))
        x = rng.normal(size=12)
        got, info = solve_spd(a, np.asarray(a @ x).ravel(), method="direct", return_info=True)
        np.testing.assert_allclose(got, x, atol=1e-8)
        assert info.method == "sparse_lu"
        assert info.nnz == a.nnz

    def test_dense_direct_info_unchanged(self, rng):
        a = _spd(rng, 8)
        x = rng.normal(size=8)
        got, info = solve_spd(a, a @ x, method="direct", return_info=True)
        np.testing.assert_allclose(got, x, atol=1e-9)
        assert info.method == "cholesky"
        assert info.nnz is None
