"""Bitwise-determinism contract of the serving layer.

The serving layer promises that batching is *only* a throughput trade:
``predict_batch`` must be bit-identical to a loop of ``predict``, at
every ``batch_size``, at every ``n_jobs`` setting, and through the
:class:`~repro.serving.server.ModelServer` micro-batcher.  These tests
use exact equality (``==``, never ``allclose``) on purpose — a single
ULP of drift means some per-query quantity leaked across queries.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.datasets.synthetic import make_regression_dataset, truncated_mvn_inputs
from repro.experiments.executor import ParallelFallbackWarning
from repro.serving import GraphSSLModel, ModelServer

METHODS = ("nw", "nystrom", "exact")


@pytest.fixture(scope="module")
def fitted():
    """One fitted model per graph family plus a 17-query workload.

    17 is deliberately prime: it never divides evenly into the batch
    sizes below, so every split exercises a ragged tail chunk.
    """
    rng = np.random.default_rng(11)
    data = make_regression_dataset(30, 120, seed=rng)
    queries = truncated_mvn_inputs(17, seed=rng)
    models = {}
    for graph, params in (("full", {}), ("knn", {"k": 10})):
        model = GraphSSLModel(graph=graph, graph_params=params)
        model.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)
        models[graph] = model
    return models, queries


class TestBatchEqualsLoop:
    @pytest.mark.parametrize("graph", ["full", "knn"])
    @pytest.mark.parametrize("method", METHODS)
    def test_predict_batch_bitwise_equals_predict_loop(self, fitted, graph, method):
        models, queries = fitted
        model = models[graph]
        batched = model.predict_batch(queries, method=method)
        looped = np.array(
            [model.predict(q[None, :], method=method)[0] for q in queries]
        )
        assert np.array_equal(batched, looped)

    @pytest.mark.parametrize("batch_size", [1, 3, 5, 17, 64])
    @pytest.mark.parametrize("method", METHODS)
    def test_batch_size_never_changes_bits(self, fitted, batch_size, method):
        models, queries = fitted
        model = models["full"]
        reference = model.predict(queries, method=method)
        split = model.predict_batch(
            queries, method=method, batch_size=batch_size
        )
        assert np.array_equal(split, reference)

    def test_interval_bounds_are_batch_invariant(self, fitted):
        models, queries = fitted
        model = models["full"]
        whole = model.predict_batch(queries, method="exact", return_interval=True)
        split = model.predict_batch(
            queries, method="exact", return_interval=True, batch_size=4
        )
        for a, b in zip(whole, split):
            assert np.array_equal(a, b)


class TestJobsInvariance:
    @pytest.mark.parametrize("method", ["nw", "nystrom"])
    def test_process_fanout_bitwise_identical(self, fitted, method):
        models, queries = fitted
        model = models["knn"]
        serial = model.predict_batch(queries, method=method, batch_size=4)
        with warnings.catch_warnings():
            # A pool that cannot start degrades serially — results are
            # the point here, not the transport.
            warnings.simplefilter("ignore", ParallelFallbackWarning)
            fanned = model.predict_batch(
                queries, method=method, batch_size=4, n_jobs=2
            )
        assert np.array_equal(serial, fanned)

    def test_exact_method_rejects_fanout(self, fitted):
        from repro.exceptions import ConfigurationError

        models, queries = fitted
        with pytest.raises(ConfigurationError, match="exact"):
            models["full"].predict_batch(queries, method="exact", n_jobs=2)


class TestServerDeterminism:
    @pytest.mark.parametrize("method", METHODS)
    def test_server_stream_equals_direct_batch(self, fitted, method):
        models, queries = fitted
        model = models["full"]
        direct = model.predict_batch(queries, method=method)
        server = ModelServer(model, method=method, max_batch_size=5)
        streamed = server.predict_many(queries)
        assert np.array_equal(streamed, direct)

    def test_flush_boundaries_are_invisible(self, fitted):
        models, queries = fitted
        model = models["full"]
        small = ModelServer(model, method="nw", max_batch_size=2)
        large = ModelServer(model, method="nw", max_batch_size=100)
        assert np.array_equal(
            small.predict_many(queries), large.predict_many(queries)
        )

    def test_repeated_workloads_are_stable(self, fitted):
        """Serving is stateless: counters advance, predictions do not."""
        models, queries = fitted
        model = models["full"]
        first = model.predict_batch(queries, method="nystrom")
        second = model.predict_batch(queries, method="nystrom")
        assert np.array_equal(first, second)
