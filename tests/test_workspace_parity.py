"""Golden parity suite: workspace sweep backends versus direct solves.

The amortization layer is only admissible if it does not move results.
This suite pins the contract from three directions:

* every workspace backend matches per-point direct solves at
  ``atol=1e-8`` across a lambda grid (the spectral claim is made on
  dense graphs, where the Galerkin basis is the full eigenbasis and the
  projection is exact — on sparse graphs the basis is truncated and
  only the exact/factored backends carry the 1e-8 guarantee);
* the sparse exact backend is *bitwise* identical to the direct sparse
  path (same operations in the same order);
* the rewired model-selection and experiment drivers (grid CV,
  bandwidth hoist, parallel replicates) reproduce their pre-workspace
  answers exactly.
"""

import numpy as np
import pytest

from repro.core.soft import solve_soft_criterion
from repro.datasets.synthetic import make_synthetic_dataset
from repro.experiments.figures.prop21 import run_prop21_experiment
from repro.experiments.figures.prop22 import run_prop22_experiment
from repro.experiments.lambda_curve import run_lambda_curve
from repro.graph.similarity import full_kernel_graph, knn_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.linalg.workspace import SolveWorkspace
from repro.model_selection.search import (
    cross_validate_lambda,
    select_bandwidth,
)

LAMBDA_GRID = (1e-3, 1e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 100.0)


@pytest.fixture(scope="module")
def dense_problem():
    data = make_synthetic_dataset(80, 40, seed=11)
    bandwidth = paper_bandwidth_rule(80, 5)
    graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
    return data, graph


@pytest.fixture(scope="module")
def sparse_problem():
    data = make_synthetic_dataset(80, 80, seed=13)
    bandwidth = paper_bandwidth_rule(80, 5)
    graph = knn_graph(data.x_all, k=12, bandwidth=bandwidth)
    return data, graph


class TestBackendParity:
    @pytest.mark.parametrize("backend", ["exact", "factored", "spectral"])
    def test_dense_backend_matches_direct(self, dense_problem, backend):
        data, graph = dense_problem
        ws = SolveWorkspace(graph.weights, backend=backend)
        for lam in LAMBDA_GRID:
            direct = solve_soft_criterion(
                graph.weights, data.y_labeled, lam, check_reachability=False
            )
            amortized = ws.solve_soft(data.y_labeled, lam)
            np.testing.assert_allclose(
                amortized.scores,
                direct.scores,
                atol=1e-8,
                rtol=0,
                err_msg=f"backend={backend} lam={lam}",
            )

    @pytest.mark.parametrize("backend", ["exact", "factored"])
    def test_sparse_backend_matches_direct(self, sparse_problem, backend):
        data, graph = sparse_problem
        ws = SolveWorkspace(graph.weights, backend=backend)
        for lam in LAMBDA_GRID:
            direct = solve_soft_criterion(
                graph.weights, data.y_labeled, lam, check_reachability=False
            )
            amortized = ws.solve_soft(data.y_labeled, lam)
            np.testing.assert_allclose(
                amortized.scores,
                direct.scores,
                atol=1e-8,
                rtol=0,
                err_msg=f"backend={backend} lam={lam}",
            )

    def test_sparse_exact_is_bitwise_identical(self, sparse_problem):
        """The sparse exact path assembles the same system with the same
        op order as :func:`solve_soft_criterion`, so it must produce the
        SAME floats, not merely close ones."""
        data, graph = sparse_problem
        ws = SolveWorkspace(graph.weights, exact=True)
        for lam in LAMBDA_GRID:
            direct = solve_soft_criterion(
                graph.weights, data.y_labeled, lam, check_reachability=False
            )
            amortized = ws.solve_soft(data.y_labeled, lam)
            np.testing.assert_array_equal(
                amortized.scores, direct.scores, err_msg=f"lam={lam}"
            )

    def test_sparse_woodbury_matches_direct(self):
        """Small labeled fraction routes the factored backend through the
        rank-n_labeled Woodbury continuation; it must still track direct
        per-point solves at 1e-8 across the whole grid."""
        data = make_synthetic_dataset(30, 170, seed=19)
        bandwidth = paper_bandwidth_rule(30, 5)
        graph = knn_graph(data.x_all, k=12, bandwidth=bandwidth)
        ws = SolveWorkspace(graph.weights, backend="factored")
        for lam in LAMBDA_GRID:
            direct = solve_soft_criterion(
                graph.weights, data.y_labeled, lam, check_reachability=False
            )
            amortized = ws.solve_soft(data.y_labeled, lam)
            np.testing.assert_allclose(
                amortized.scores, direct.scores, atol=1e-8, rtol=0,
                err_msg=f"lam={lam}",
            )
        assert ws.stats().woodbury_solves >= len(LAMBDA_GRID) - 1

    def test_lambda_zero_matches_hard_everywhere(self, dense_problem):
        data, graph = dense_problem
        for backend in ("exact", "factored", "spectral"):
            ws = SolveWorkspace(graph.weights, backend=backend)
            via_soft = ws.solve_soft(data.y_labeled, 0.0)
            via_hard = ws.solve_hard(data.y_labeled)
            np.testing.assert_array_equal(via_soft.scores, via_hard.scores)


class TestModelSelectionParity:
    def test_grid_cv_matches_scalar_loop(self, dense_problem):
        """Scoring a grid in one call (folds hoisted outside the lambda
        loop) must equal the historical per-lambda scalar calls when the
        seed is a reused integer: same fold draws, same solves."""
        data, graph = dense_problem
        grid = (0.0, 0.01, 0.1, 1.0)
        batched = cross_validate_lambda(
            graph.weights, data.y_labeled, grid, n_folds=4, seed=5
        )
        looped = tuple(
            cross_validate_lambda(
                graph.weights, data.y_labeled, lam, n_folds=4, seed=5
            )
            for lam in grid
        )
        assert batched == looped

    @pytest.mark.parametrize("backend", ["exact", "factored"])
    def test_cv_workspace_backend_matches_direct(self, dense_problem, backend):
        data, graph = dense_problem
        grid = (0.0, 0.01, 0.1, 1.0)
        direct = cross_validate_lambda(
            graph.weights, data.y_labeled, grid, n_folds=4, seed=5
        )
        amortized = cross_validate_lambda(
            graph.weights,
            data.y_labeled,
            grid,
            n_folds=4,
            seed=5,
            sweep_backend=backend,
        )
        np.testing.assert_allclose(amortized, direct, atol=1e-8, rtol=0)

    def test_select_bandwidth_hoist_matches_rebuilt(self):
        """Hoisting sqrt(pairwise distances) out of the bandwidth loop
        reuses the same ``profile(radii / h)`` op order as
        ``kernel.gram``, so scores must be bitwise unchanged."""
        data = make_synthetic_dataset(40, 20, seed=17)
        grid = (0.5, 1.0, 2.0)
        hoisted = select_bandwidth(
            data.x_labeled,
            data.y_labeled,
            data.x_unlabeled,
            grid=grid,
            n_folds=3,
            seed=2,
        )
        from repro.kernels.library import GaussianKernel

        x_all = np.vstack([data.x_labeled, data.x_unlabeled])
        for bandwidth, score in zip(grid, hoisted.scores):
            weights = GaussianKernel().gram(x_all, bandwidth=bandwidth)
            rebuilt = cross_validate_lambda(
                weights, data.y_labeled, 0.0, n_folds=3, seed=2
            )
            assert rebuilt == score


class TestExperimentParity:
    def test_lambda_curve_serial_parallel_bit_identical(self):
        kwargs = dict(
            n_labeled=40,
            n_unlabeled=12,
            lambdas=(0.0, 0.01, 0.1, 1.0),
            n_replicates=4,
            seed=21,
            sweep_backend="factored",
        )
        serial = run_lambda_curve(n_jobs=1, **kwargs)
        parallel = run_lambda_curve(n_jobs=2, **kwargs)
        assert serial.rmse == parallel.rmse
        assert serial.hard_rmse == parallel.hard_rmse
        assert serial.mean_rmse == parallel.mean_rmse

    def test_lambda_curve_workspace_interpolates_anchors(self):
        curve = run_lambda_curve(
            n_labeled=40,
            n_unlabeled=12,
            lambdas=(0.0, 0.01, 0.1, 1.0, 100.0, 1e4),
            n_replicates=3,
            seed=22,
            sweep_backend="factored",
        )
        assert curve.interpolates_anchors

    @pytest.mark.parametrize("backend", ["exact", "factored", "spectral"])
    def test_prop21_still_converges(self, backend):
        result = run_prop21_experiment(
            n_labeled=40, n_unlabeled=12, seed=1, sweep_backend=backend
        )
        assert result.converges

    @pytest.mark.parametrize("backend", ["exact", "factored", "spectral"])
    def test_prop22_still_collapses(self, backend):
        result = run_prop22_experiment(
            n_labeled=40, n_unlabeled=12, seed=1, sweep_backend=backend
        )
        assert result.collapses_to_mean
