"""Unit tests for the hard criterion (Eq. 1/5)."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.hard import hard_criterion_objective, solve_hard_criterion
from repro.exceptions import DataValidationError, DisconnectedGraphError
from repro.graph.similarity import full_kernel_graph


class TestClosedForm:
    def test_matches_eq5_bruteforce(self, small_problem):
        """Solver output equals a literal transcription of Eq. (5)."""
        data, weights, _ = small_problem
        n = data.n_labeled
        degrees = weights.sum(axis=1)
        d22 = np.diag(degrees[n:])
        w22 = weights[n:, n:]
        w21 = weights[n:, :n]
        expected = np.linalg.solve(d22 - w22, w21 @ data.y_labeled)
        fit = solve_hard_criterion(weights, data.y_labeled)
        np.testing.assert_allclose(fit.unlabeled_scores, expected, atol=1e-10)

    def test_labeled_scores_clamped_exactly(self, small_problem):
        data, weights, _ = small_problem
        fit = solve_hard_criterion(weights, data.y_labeled)
        np.testing.assert_array_equal(fit.labeled_scores, data.y_labeled)

    def test_hand_computed_path_graph(self):
        """Path 0-1-2 with unit weights, vertex 0 labeled y=1, 1-2 unlabeled.

        System: d = (1, 2, 1) ignoring self-weights; solving
        (D22-W22) f = W21 y gives f = (2/3, 1/3)... with weights
        w01=w12=1, w02=0 and no self-loops:
        D22 = diag(2, 1), W22 = [[0,1],[1,0]], W21 = [[1],[0]].
        (D22-W22)^{-1} W21 y = [[2,-1],[-1,1]]^{-1} [1,0]^T = [1, 1].
        A harmonic function with one boundary value is constant.
        """
        w = np.array(
            [
                [0.0, 1.0, 0.0],
                [1.0, 0.0, 1.0],
                [0.0, 1.0, 0.0],
            ]
        )
        fit = solve_hard_criterion(w, np.array([1.0]))
        np.testing.assert_allclose(fit.unlabeled_scores, [1.0, 1.0], atol=1e-12)

    def test_two_boundary_path_interpolates(self):
        """Path 0-2-3-1 (labeled ends 0 and 1): linear interpolation."""
        # Vertex order: labeled 0 (y=0), labeled 1 (y=3), unlabeled 2, 3.
        # Edges: 0-2, 2-3, 3-1, all weight 1.
        w = np.zeros((4, 4))
        for i, j in [(0, 2), (2, 3), (3, 1)]:
            w[i, j] = w[j, i] = 1.0
        fit = solve_hard_criterion(w, np.array([0.0, 3.0]))
        np.testing.assert_allclose(fit.unlabeled_scores, [1.0, 2.0], atol=1e-12)

    def test_maximum_principle(self, small_problem):
        """Harmonic scores lie inside [min Y, max Y]."""
        data, weights, _ = small_problem
        fit = solve_hard_criterion(weights, data.y_labeled)
        assert fit.unlabeled_scores.min() >= data.y_labeled.min() - 1e-10
        assert fit.unlabeled_scores.max() <= data.y_labeled.max() + 1e-10

    def test_is_minimizer_of_objective(self, small_problem, rng):
        """Random feasible perturbations never decrease Eq. (1)."""
        data, weights, _ = small_problem
        fit = solve_hard_criterion(weights, data.y_labeled)
        base = hard_criterion_objective(weights, fit.scores)
        for _ in range(10):
            perturbed = fit.scores.copy()
            perturbed[data.n_labeled :] += 0.05 * rng.normal(
                size=fit.n_unlabeled
            )
            assert hard_criterion_objective(weights, perturbed) >= base - 1e-9


class TestSolverBackends:
    @pytest.mark.parametrize("method", ["cg", "jacobi", "gauss_seidel", "sparse"])
    def test_backends_match_direct(self, small_problem, method):
        data, weights, _ = small_problem
        direct = solve_hard_criterion(weights, data.y_labeled, method="direct")
        other = solve_hard_criterion(
            weights, data.y_labeled, method=method, tol=1e-12
        )
        np.testing.assert_allclose(
            other.unlabeled_scores, direct.unlabeled_scores, atol=1e-7
        )

    def test_sparse_weight_matrix(self, small_problem):
        data, weights, _ = small_problem
        dense_fit = solve_hard_criterion(weights, data.y_labeled)
        sparse_fit = solve_hard_criterion(sparse.csr_matrix(weights), data.y_labeled)
        np.testing.assert_allclose(
            sparse_fit.unlabeled_scores, dense_fit.unlabeled_scores, atol=1e-8
        )

    def test_result_metadata(self, small_problem):
        data, weights, _ = small_problem
        fit = solve_hard_criterion(weights, data.y_labeled)
        assert fit.criterion == "hard"
        assert fit.lam == 0.0
        assert fit.n_labeled == data.n_labeled
        assert fit.n_unlabeled == data.n_unlabeled


class TestEdgeCases:
    def test_no_unlabeled_returns_labels(self, rng):
        x = rng.normal(size=(5, 2))
        graph = full_kernel_graph(x, bandwidth=1.0)
        y = rng.normal(size=5)
        fit = solve_hard_criterion(graph.weights, y)
        np.testing.assert_array_equal(fit.scores, y)
        assert fit.n_unlabeled == 0

    def test_single_label(self, rng):
        x = rng.normal(size=(6, 2))
        graph = full_kernel_graph(x, bandwidth=2.0)
        fit = solve_hard_criterion(graph.weights, np.array([4.2]))
        # One boundary value: the harmonic extension is constant.
        np.testing.assert_allclose(fit.unlabeled_scores, np.full(5, 4.2), atol=1e-8)

    def test_disconnected_raises(self, disconnected_weights):
        with pytest.raises(DisconnectedGraphError):
            solve_hard_criterion(disconnected_weights, np.array([1.0, 0.0]))

    def test_reachability_check_can_be_disabled(self, disconnected_weights):
        from repro.exceptions import SingularSystemError, ConvergenceError

        with pytest.raises((SingularSystemError, ConvergenceError, DisconnectedGraphError)):
            # Without the check the singular system itself must fail loudly.
            solve_hard_criterion(
                disconnected_weights,
                np.array([1.0, 0.0]),
                check_reachability=False,
            )

    def test_more_labels_than_vertices_raises(self, tiny_weights):
        with pytest.raises(DataValidationError):
            solve_hard_criterion(tiny_weights, np.ones(9))

    def test_permutation_equivariance_of_unlabeled(self, small_problem, rng):
        """Permuting unlabeled vertices permutes their scores."""
        data, weights, _ = small_problem
        n, m = data.n_labeled, data.n_unlabeled
        perm = rng.permutation(m)
        order = np.concatenate([np.arange(n), n + perm])
        permuted = weights[np.ix_(order, order)]
        base = solve_hard_criterion(weights, data.y_labeled)
        shuffled = solve_hard_criterion(permuted, data.y_labeled)
        np.testing.assert_allclose(
            shuffled.unlabeled_scores, base.unlabeled_scores[perm], atol=1e-10
        )


class TestObjective:
    def test_zero_for_constant_scores(self, tiny_weights):
        assert hard_criterion_objective(tiny_weights, np.ones(4)) == pytest.approx(0.0)

    def test_matches_laplacian_quadratic_form(self, small_problem, rng):
        _, weights, _ = small_problem
        f = rng.normal(size=weights.shape[0])
        from repro.graph.laplacian import laplacian

        expected = 2.0 * f @ laplacian(weights) @ f
        assert hard_criterion_objective(weights, f) == pytest.approx(expected, rel=1e-9)

    def test_sparse_matches_dense(self, small_problem, rng):
        _, weights, _ = small_problem
        f = rng.normal(size=weights.shape[0])
        dense = hard_criterion_objective(weights, f)
        sp = hard_criterion_objective(sparse.csr_matrix(weights), f)
        assert sp == pytest.approx(dense, rel=1e-9)
