"""API-surface tests: result containers, reprs, exports, small contracts."""

import numpy as np
import pytest

import repro
from repro.core.result import FitResult, PropagationResult
from repro.exceptions import (
    AssumptionViolationError,
    ConfigurationError,
    ConvergenceError,
    DataValidationError,
    DisconnectedGraphError,
    GraphStructureError,
    NotFittedError,
    ReproError,
    SingularSystemError,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            DataValidationError,
            GraphStructureError,
            DisconnectedGraphError,
            SingularSystemError,
            ConvergenceError,
            AssumptionViolationError,
            NotFittedError,
            ConfigurationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_error_compatibility(self):
        """Validation-style errors double as ValueError for generic callers."""
        for exc in (DataValidationError, GraphStructureError, ConfigurationError):
            assert issubclass(exc, ValueError)

    def test_runtime_error_compatibility(self):
        for exc in (ConvergenceError, NotFittedError):
            assert issubclass(exc, RuntimeError)

    def test_convergence_error_payload(self):
        error = ConvergenceError("no", iterations=7, residual=0.5)
        assert error.iterations == 7
        assert error.residual == 0.5

    def test_disconnected_error_payload(self):
        error = DisconnectedGraphError("orphans", component_indices=(3, 4))
        assert error.component_indices == (3, 4)


class TestResultContainers:
    def test_fit_result_views(self):
        scores = np.arange(7, dtype=float)
        fit = FitResult(
            scores=scores, n_labeled=4, lam=0.2, method="direct",
            criterion="soft",
        )
        np.testing.assert_array_equal(fit.labeled_scores, [0, 1, 2, 3])
        np.testing.assert_array_equal(fit.unlabeled_scores, [4, 5, 6])
        assert fit.n_unlabeled == 3

    def test_propagation_result_delegation(self):
        fit = FitResult(
            scores=np.array([1.0, 2.0]), n_labeled=1, lam=0.0,
            method="propagation", criterion="hard",
        )
        prop = PropagationResult(
            fit=fit, iterations=3, delta_norms=(0.1, 0.01, 0.001), converged=True
        )
        np.testing.assert_array_equal(prop.scores, fit.scores)
        np.testing.assert_array_equal(prop.unlabeled_scores, [2.0])


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("name", repro.__all__)
    def test_all_entries_resolve(self, name):
        assert getattr(repro, name) is not None

    def test_core_star_names_resolve(self):
        import repro.core as core

        for name in core.__all__:
            assert getattr(core, name) is not None

    def test_graph_star_names_resolve(self):
        import repro.graph as graph

        for name in graph.__all__:
            assert getattr(graph, name) is not None

    def test_metrics_star_names_resolve(self):
        import repro.metrics as metrics

        for name in metrics.__all__:
            assert getattr(metrics, name) is not None

    def test_datasets_star_names_resolve(self):
        import repro.datasets as datasets

        for name in datasets.__all__:
            assert getattr(datasets, name) is not None

    def test_linalg_star_names_resolve(self):
        import repro.linalg as linalg

        for name in linalg.__all__:
            assert getattr(linalg, name) is not None


class TestKernelReprs:
    def test_default_repr(self):
        from repro.kernels import GaussianKernel, TruncatedGaussianKernel

        assert repr(GaussianKernel()) == "GaussianKernel()"
        assert "cutoff=5.0" in repr(TruncatedGaussianKernel(cutoff=5.0))


class TestEstimatorSoftMethodParam:
    def test_soft_method_full_matches_schur(self):
        from repro.core.estimators import SoftLabelPropagation
        from repro.datasets.synthetic import make_synthetic_dataset

        data = make_synthetic_dataset(40, 10, seed=9)
        schur = SoftLabelPropagation(0.3, bandwidth="paper", soft_method="schur")
        full = SoftLabelPropagation(0.3, bandwidth="paper", soft_method="full")
        a = schur.fit_predict(data.x_labeled, data.y_labeled, data.x_unlabeled)
        b = full.fit_predict(data.x_labeled, data.y_labeled, data.x_unlabeled)
        np.testing.assert_allclose(a, b, atol=1e-8)
