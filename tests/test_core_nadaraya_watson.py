"""Unit tests for the Nadaraya-Watson estimator (Eq. 6)."""

import numpy as np
import pytest

from repro.core.nadaraya_watson import nadaraya_watson, nadaraya_watson_from_weights
from repro.exceptions import DataValidationError
from repro.kernels.library import BoxcarKernel, GaussianKernel


class TestFromWeights:
    def test_matches_eq6_bruteforce(self, small_problem):
        data, weights, _ = small_problem
        n = data.n_labeled
        got = nadaraya_watson_from_weights(weights, data.y_labeled)
        w21 = weights[n:, :n]
        expected = (w21 @ data.y_labeled) / w21.sum(axis=1)
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_convex_combination_of_labels(self, small_problem):
        data, weights, _ = small_problem
        got = nadaraya_watson_from_weights(weights, data.y_labeled)
        assert got.min() >= data.y_labeled.min() - 1e-12
        assert got.max() <= data.y_labeled.max() + 1e-12

    def test_denominator_sums_labeled_only(self):
        """The NW denominator excludes unlabeled neighbours (unlike d_{n+a})."""
        w = np.array(
            [
                [1.0, 0.0, 0.5, 0.1],
                [0.0, 1.0, 0.5, 0.0],
                [0.5, 0.5, 1.0, 0.9],
                [0.1, 0.0, 0.9, 1.0],
            ]
        )
        y = np.array([1.0, 0.0])
        got = nadaraya_watson_from_weights(w, y)
        # Vertex 2: (0.5*1 + 0.5*0) / (0.5+0.5) = 0.5 despite heavy edge to 3.
        assert got[0] == pytest.approx(0.5)

    def test_requires_unlabeled(self, tiny_weights):
        with pytest.raises(DataValidationError):
            nadaraya_watson_from_weights(tiny_weights, np.ones(4))

    def test_zero_labeled_mass_raises(self):
        w = np.zeros((3, 3))
        np.fill_diagonal(w, 1.0)
        w[1, 2] = w[2, 1] = 0.5  # unlabeled pair, no edge to labeled 0
        with pytest.raises(DataValidationError, match="zero total weight"):
            nadaraya_watson_from_weights(w, np.array([1.0]))


class TestFromData:
    def test_matches_weights_version(self, small_problem):
        data, weights, bandwidth = small_problem
        from_data = nadaraya_watson(
            data.x_labeled, data.y_labeled, data.x_unlabeled, bandwidth=bandwidth
        )
        from_weights = nadaraya_watson_from_weights(weights, data.y_labeled)
        np.testing.assert_allclose(from_data, from_weights, atol=1e-10)

    def test_boxcar_is_local_average(self, rng):
        """With a boxcar kernel NW is the plain mean of in-ball labels."""
        x = np.array([[0.0], [0.1], [0.2], [5.0]])
        y = np.array([1.0, 2.0, 3.0, 100.0])
        query = np.array([[0.1]])
        got = nadaraya_watson(x, y, query, kernel=BoxcarKernel(), bandwidth=0.5)
        assert got[0] == pytest.approx(2.0)

    def test_interpolates_at_training_point_small_bandwidth(self, rng):
        x = rng.normal(size=(20, 2))
        y = rng.normal(size=20)
        got = nadaraya_watson(x, y, x[:1], bandwidth=1e-3)
        assert got[0] == pytest.approx(y[0], abs=1e-6)

    def test_constant_labels_reproduced(self, rng):
        x = rng.normal(size=(15, 3))
        y = np.full(15, 3.3)
        query = rng.normal(size=(4, 3))
        got = nadaraya_watson(x, y, query, bandwidth=1.0)
        np.testing.assert_allclose(got, np.full(4, 3.3), atol=1e-12)

    def test_empty_support_raises(self):
        x = np.array([[0.0, 0.0]])
        y = np.array([1.0])
        far_query = np.array([[100.0, 100.0]])
        with pytest.raises(DataValidationError, match="bandwidth"):
            nadaraya_watson(x, y, far_query, kernel=BoxcarKernel(), bandwidth=1.0)

    def test_recovers_smooth_function(self, rng):
        """Statistical sanity: NW approximates a smooth 1-d regression."""
        n = 3000
        x = rng.uniform(0, 1, size=(n, 1))
        q = np.sin(2 * np.pi * x[:, 0])
        y = q + 0.1 * rng.normal(size=n)
        query = np.linspace(0.1, 0.9, 20)[:, None]
        got = nadaraya_watson(x, y, query, kernel=GaussianKernel(), bandwidth=0.03)
        truth = np.sin(2 * np.pi * query[:, 0])
        assert np.max(np.abs(got - truth)) < 0.1

    def test_label_length_mismatch_raises(self, rng):
        with pytest.raises(DataValidationError):
            nadaraya_watson(
                rng.normal(size=(5, 2)), np.ones(4), rng.normal(size=(2, 2)),
                bandwidth=1.0,
            )
