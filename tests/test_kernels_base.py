"""Unit tests for repro.kernels.base."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.kernels.base import pairwise_sq_distances
from repro.kernels.library import GaussianKernel, BoxcarKernel


class TestPairwiseSqDistances:
    def test_matches_bruteforce(self, rng):
        x = rng.normal(size=(7, 3))
        y = rng.normal(size=(5, 3))
        got = pairwise_sq_distances(x, y)
        expected = np.array(
            [[np.sum((a - b) ** 2) for b in y] for a in x]
        )
        np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_self_distances_zero_diagonal(self, rng):
        x = rng.normal(size=(6, 4))
        sq = pairwise_sq_distances(x)
        np.testing.assert_array_equal(np.diag(sq), np.zeros(6))

    def test_never_negative(self, rng):
        # Near-duplicate rows trigger catastrophic cancellation.
        x = np.repeat(rng.normal(size=(1, 5)), 50, axis=0)
        x += 1e-9 * rng.normal(size=x.shape)
        assert pairwise_sq_distances(x).min() >= 0.0

    def test_symmetry(self, rng):
        x = rng.normal(size=(8, 2))
        sq = pairwise_sq_distances(x)
        np.testing.assert_allclose(sq, sq.T, atol=1e-12)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DataValidationError, match="columns"):
            pairwise_sq_distances(np.ones((2, 3)), np.ones((2, 4)))


class TestRadialKernelApi:
    def test_call_on_difference_vectors(self):
        kernel = GaussianKernel()
        diffs = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 2.0]])
        values = kernel(diffs)
        np.testing.assert_allclose(
            values, [1.0, np.exp(-1.0), np.exp(-4.0)], atol=1e-12
        )

    def test_evaluate_radii_rejects_negative(self):
        with pytest.raises(DataValidationError, match="non-negative"):
            GaussianKernel().evaluate_radii([-0.1])

    def test_gram_matches_paper_formula(self, rng):
        # w_ij = exp(-||xi-xj||^2 / h^2) with sigma = h.
        x = rng.normal(size=(6, 3))
        h = 0.7
        gram = GaussianKernel().gram(x, bandwidth=h)
        sq = pairwise_sq_distances(x)
        np.testing.assert_allclose(gram, np.exp(-sq / h**2), atol=1e-12)

    def test_gram_cross_shape(self, rng):
        x = rng.normal(size=(4, 2))
        y = rng.normal(size=(6, 2))
        assert GaussianKernel().gram(x, y, bandwidth=1.0).shape == (4, 6)

    def test_gram_unit_diagonal(self, rng):
        x = rng.normal(size=(5, 2))
        gram = GaussianKernel().gram(x, bandwidth=0.5)
        np.testing.assert_allclose(np.diag(gram), np.ones(5), atol=1e-12)

    def test_gram_requires_positive_bandwidth(self, rng):
        x = rng.normal(size=(3, 2))
        with pytest.raises(DataValidationError):
            GaussianKernel().gram(x, bandwidth=0.0)

    def test_condition_report_gaussian(self):
        report = GaussianKernel().theorem_conditions()
        assert report.bounded
        assert not report.compact_support  # the RBF violates (ii)
        assert report.lower_bounded_on_ball
        assert not report.all_satisfied

    def test_condition_report_boxcar(self):
        report = BoxcarKernel().theorem_conditions()
        assert report.all_satisfied

    def test_condition_summary_mentions_failures(self):
        text = GaussianKernel().theorem_conditions().summary()
        assert "NO" in text and "compact" in text


class TestChunkedDistances:
    """The blocked large-output path must agree with the one-shot
    expression, allocate no (n, m)-sized temporaries beyond the output,
    and honour caller-supplied buffers."""

    def test_explicit_chunk_matches_one_shot(self, rng):
        x = rng.normal(size=(57, 4))
        y = rng.normal(size=(23, 4))
        reference = pairwise_sq_distances(x, y)
        for chunk in (1, 7, 57, 100):
            np.testing.assert_allclose(
                pairwise_sq_distances(x, y, chunk_size=chunk),
                reference,
                atol=1e-12,
            )

    def test_chunked_self_distances_zero_diagonal(self, rng):
        x = rng.normal(size=(40, 3))
        sq = pairwise_sq_distances(x, chunk_size=11)
        np.testing.assert_array_equal(np.diagonal(sq), np.zeros(40))
        np.testing.assert_allclose(sq, pairwise_sq_distances(x), atol=1e-12)

    def test_small_outputs_keep_historical_expression_bitwise(self, rng):
        # the auto path below CHUNK_AUTO_ELEMENTS must stay bit-identical
        # to previous releases (golden tests depend on it)
        from repro.kernels.base import CHUNK_AUTO_ELEMENTS

        x = rng.normal(size=(64, 5))
        y = rng.normal(size=(48, 5))
        assert 64 * 48 <= CHUNK_AUTO_ELEMENTS
        x_norms = np.einsum("ij,ij->i", x, x)
        y_norms = np.einsum("ij,ij->i", y, y)
        legacy = x_norms[:, None] + y_norms[None, :] - 2.0 * (x @ y.T)
        np.maximum(legacy, 0.0, out=legacy)
        np.testing.assert_array_equal(pairwise_sq_distances(x, y), legacy)

    def test_out_buffer_reused(self, rng):
        x = rng.normal(size=(30, 2))
        out = np.empty((30, 30))
        result = pairwise_sq_distances(x, out=out)
        assert result is out
        result_chunked = pairwise_sq_distances(x, chunk_size=8, out=out)
        assert result_chunked is out

    def test_invalid_arguments_rejected(self, rng):
        x = rng.normal(size=(10, 2))
        with pytest.raises(DataValidationError, match="chunk_size"):
            pairwise_sq_distances(x, chunk_size=0)
        with pytest.raises(DataValidationError, match="chunk_size"):
            pairwise_sq_distances(x, chunk_size=2.5)
        with pytest.raises(DataValidationError, match="out"):
            pairwise_sq_distances(x, out=np.empty((3, 3)))
        with pytest.raises(DataValidationError, match="out"):
            pairwise_sq_distances(x, out=np.empty((10, 10), dtype=np.float32))

    def test_float32_inputs_keep_dtype(self, rng):
        x32 = rng.normal(size=(20, 3)).astype(np.float32)
        y32 = rng.normal(size=(15, 3)).astype(np.float32)
        sq = pairwise_sq_distances(x32, y32)
        assert sq.dtype == np.float32
        np.testing.assert_allclose(
            sq,
            pairwise_sq_distances(x32.astype(np.float64), y32.astype(np.float64)),
            atol=1e-5,
        )
        # mixed precision promotes to float64, exactly as before
        assert pairwise_sq_distances(x32, y32.astype(np.float64)).dtype == np.float64

    def test_auto_threshold_is_byte_based(self, rng, monkeypatch):
        """The auto rule cuts at CHUNK_AUTO_BYTES of *output*, so float32
        outputs chunk at twice the element count of float64 ones."""
        import repro.kernels.base as base

        monkeypatch.setattr(base, "CHUNK_AUTO_BYTES", 64 * 8)
        x = rng.normal(size=(16, 3))
        calls = []
        original = base._fill_sq_blocked

        def spy(*args, **kwargs):
            calls.append(args[4].shape)
            return original(*args, **kwargs)

        monkeypatch.setattr(base, "_fill_sq_blocked", spy)
        # 8x8 float64 = 64 elements: at the cutoff, one-shot
        pairwise_sq_distances(x[:8], x[:8].copy())
        assert calls == []
        # 16x8 float64 = 128 elements: over, blocked
        pairwise_sq_distances(x, x[:8].copy())
        assert calls == [(16, 8)]
        # 16x8 float32 = 512 bytes: under the 512-byte cutoff, one-shot
        pairwise_sq_distances(
            x.astype(np.float32), x[:8].astype(np.float32)
        )
        assert calls == [(16, 8)]

    def test_auto_chunking_bounds_temporaries(self, rng, monkeypatch):
        """Above the auto threshold, no allocation besides the output may
        reach (n * m) elements."""
        import repro.kernels.base as base

        monkeypatch.setattr(base, "CHUNK_AUTO_BYTES", 2**10 * 8)
        n, m = 96, 64
        budget = n * m  # the output itself is allocated before guarding
        x = rng.normal(size=(n, 3))
        y = rng.normal(size=(m, 3))
        reference = x.copy(), y.copy()
        out = np.empty((n, m))

        def guarded(allocator):
            def wrapper(shape, *args, **kwargs):
                size = int(np.prod(np.atleast_1d(shape)))
                assert size < budget, (
                    f"allocation of shape {shape} on the chunked path"
                )
                return allocator(shape, *args, **kwargs)

            return wrapper

        monkeypatch.setattr(np, "empty", guarded(np.empty))
        monkeypatch.setattr(np, "zeros", guarded(np.zeros))
        sq = pairwise_sq_distances(x, y, out=out)
        np.testing.assert_array_equal(x, reference[0])
        np.testing.assert_array_equal(y, reference[1])
        expected = ((x[:, None, :] - y[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(sq, expected, atol=1e-10)
