"""Unit tests for repro.kernels.base."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.kernels.base import pairwise_sq_distances
from repro.kernels.library import GaussianKernel, BoxcarKernel


class TestPairwiseSqDistances:
    def test_matches_bruteforce(self, rng):
        x = rng.normal(size=(7, 3))
        y = rng.normal(size=(5, 3))
        got = pairwise_sq_distances(x, y)
        expected = np.array(
            [[np.sum((a - b) ** 2) for b in y] for a in x]
        )
        np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_self_distances_zero_diagonal(self, rng):
        x = rng.normal(size=(6, 4))
        sq = pairwise_sq_distances(x)
        np.testing.assert_array_equal(np.diag(sq), np.zeros(6))

    def test_never_negative(self, rng):
        # Near-duplicate rows trigger catastrophic cancellation.
        x = np.repeat(rng.normal(size=(1, 5)), 50, axis=0)
        x += 1e-9 * rng.normal(size=x.shape)
        assert pairwise_sq_distances(x).min() >= 0.0

    def test_symmetry(self, rng):
        x = rng.normal(size=(8, 2))
        sq = pairwise_sq_distances(x)
        np.testing.assert_allclose(sq, sq.T, atol=1e-12)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DataValidationError, match="columns"):
            pairwise_sq_distances(np.ones((2, 3)), np.ones((2, 4)))


class TestRadialKernelApi:
    def test_call_on_difference_vectors(self):
        kernel = GaussianKernel()
        diffs = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 2.0]])
        values = kernel(diffs)
        np.testing.assert_allclose(
            values, [1.0, np.exp(-1.0), np.exp(-4.0)], atol=1e-12
        )

    def test_evaluate_radii_rejects_negative(self):
        with pytest.raises(DataValidationError, match="non-negative"):
            GaussianKernel().evaluate_radii([-0.1])

    def test_gram_matches_paper_formula(self, rng):
        # w_ij = exp(-||xi-xj||^2 / h^2) with sigma = h.
        x = rng.normal(size=(6, 3))
        h = 0.7
        gram = GaussianKernel().gram(x, bandwidth=h)
        sq = pairwise_sq_distances(x)
        np.testing.assert_allclose(gram, np.exp(-sq / h**2), atol=1e-12)

    def test_gram_cross_shape(self, rng):
        x = rng.normal(size=(4, 2))
        y = rng.normal(size=(6, 2))
        assert GaussianKernel().gram(x, y, bandwidth=1.0).shape == (4, 6)

    def test_gram_unit_diagonal(self, rng):
        x = rng.normal(size=(5, 2))
        gram = GaussianKernel().gram(x, bandwidth=0.5)
        np.testing.assert_allclose(np.diag(gram), np.ones(5), atol=1e-12)

    def test_gram_requires_positive_bandwidth(self, rng):
        x = rng.normal(size=(3, 2))
        with pytest.raises(DataValidationError):
            GaussianKernel().gram(x, bandwidth=0.0)

    def test_condition_report_gaussian(self):
        report = GaussianKernel().theorem_conditions()
        assert report.bounded
        assert not report.compact_support  # the RBF violates (ii)
        assert report.lower_bounded_on_ball
        assert not report.all_satisfied

    def test_condition_report_boxcar(self):
        report = BoxcarKernel().theorem_conditions()
        assert report.all_satisfied

    def test_condition_summary_mentions_failures(self):
        text = GaussianKernel().theorem_conditions().summary()
        assert "NO" in text and "compact" in text
