"""Tests for the active-learning strategies and simulation loop."""

import numpy as np
import pytest

from repro.active.loop import run_active_learning
from repro.active.strategies import (
    expected_risk_strategy,
    margin_strategy,
    random_strategy,
    strategy_by_name,
    variance_strategy,
)
from repro.datasets.toy import two_moons
from repro.exceptions import ConfigurationError, DataValidationError
from repro.graph.similarity import full_kernel_graph


@pytest.fixture(scope="module")
def moons_pool():
    x, y = two_moons(120, noise=0.08, seed=0)
    weights = full_kernel_graph(x, bandwidth=0.3).dense_weights()
    seeds = np.concatenate(
        [np.flatnonzero(y == 0.0)[:2], np.flatnonzero(y == 1.0)[:2]]
    )
    return weights, y, seeds


class TestStrategies:
    def test_registry(self):
        assert strategy_by_name("random") is random_strategy
        assert strategy_by_name("margin") is margin_strategy
        assert strategy_by_name("variance") is variance_strategy
        assert strategy_by_name("expected_risk") is expected_risk_strategy

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown strategy"):
            strategy_by_name("oracle")

    @pytest.mark.parametrize(
        "strategy", [random_strategy, margin_strategy, variance_strategy, expected_risk_strategy]
    )
    def test_returns_valid_unlabeled_index(self, moons_pool, strategy):
        weights, y, seeds = moons_pool
        order = np.concatenate([seeds, np.setdiff1d(np.arange(len(y)), seeds)])
        w_perm = weights[np.ix_(order, order)]
        rng = np.random.default_rng(0)
        pick = strategy(w_perm, len(seeds), y[seeds], rng)
        assert 0 <= pick < len(y) - len(seeds)

    def test_margin_picks_most_ambiguous(self, small_problem):
        data, weights, _ = small_problem
        rng = np.random.default_rng(0)
        pick = margin_strategy(weights, data.n_labeled, data.y_labeled, rng)
        from repro.core.hard import solve_hard_criterion

        scores = solve_hard_criterion(weights, data.y_labeled).unlabeled_scores
        assert abs(scores[pick] - 0.5) == pytest.approx(np.min(np.abs(scores - 0.5)))

    def test_variance_picks_max_variance(self, small_problem):
        data, weights, _ = small_problem
        from repro.core.uncertainty import gaussian_field_posterior

        rng = np.random.default_rng(0)
        pick = variance_strategy(weights, data.n_labeled, data.y_labeled, rng)
        posterior = gaussian_field_posterior(weights, data.y_labeled)
        assert posterior.variance[pick] == posterior.variance.max()


class TestLoop:
    def test_history_structure(self, moons_pool):
        weights, y, seeds = moons_pool
        history = run_active_learning(
            weights, y, seed_indices=seeds, budget=5, strategy="random", rng_seed=0
        )
        assert len(history.accuracies) == 6  # seed eval + 5 queries
        assert history.n_labeled == tuple(range(4, 10))
        assert len(history.queried) == 5
        assert 0.0 <= history.final_accuracy <= 1.0
        assert 0.0 <= history.area_under_curve() <= 1.0

    def test_queried_vertices_unique_and_outside_seed(self, moons_pool):
        weights, y, seeds = moons_pool
        history = run_active_learning(
            weights, y, seed_indices=seeds, budget=10, strategy="variance", rng_seed=0
        )
        assert len(set(history.queried)) == 10
        assert not set(history.queried) & set(seeds.tolist())

    def test_informed_strategies_beat_random_on_moons(self, moons_pool):
        """Label-efficiency ordering: risk/variance/margin >= random."""
        weights, y, seeds = moons_pool
        curves = {
            name: run_active_learning(
                weights, y, seed_indices=seeds, budget=8,
                strategy=name, rng_seed=3,
            ).area_under_curve()
            for name in ("random", "margin", "variance", "expected_risk")
        }
        assert curves["expected_risk"] >= curves["random"]
        assert curves["variance"] >= curves["random"]

    def test_reproducible(self, moons_pool):
        weights, y, seeds = moons_pool
        a = run_active_learning(
            weights, y, seed_indices=seeds, budget=4, strategy="random", rng_seed=7
        )
        b = run_active_learning(
            weights, y, seed_indices=seeds, budget=4, strategy="random", rng_seed=7
        )
        assert a.queried == b.queried
        assert a.accuracies == b.accuracies

    def test_custom_callable_strategy(self, moons_pool):
        weights, y, seeds = moons_pool
        history = run_active_learning(
            weights, y, seed_indices=seeds, budget=3,
            strategy=lambda w, n, labels, rng: 0, rng_seed=0,
        )
        assert len(history.queried) == 3

    def test_validation_errors(self, moons_pool):
        weights, y, seeds = moons_pool
        with pytest.raises(ConfigurationError):
            run_active_learning(weights, y, seed_indices=[], budget=3, strategy="random")
        with pytest.raises(ConfigurationError):
            run_active_learning(
                weights, y, seed_indices=[0, 0], budget=3, strategy="random"
            )
        with pytest.raises(ConfigurationError):
            run_active_learning(
                weights, y, seed_indices=seeds, budget=0, strategy="random"
            )
        with pytest.raises(ConfigurationError):
            run_active_learning(
                weights, y, seed_indices=seeds, budget=10**6, strategy="random"
            )
        with pytest.raises(DataValidationError, match="binary"):
            run_active_learning(
                weights, y + 0.5, seed_indices=seeds, budget=3, strategy="random"
            )

    def test_out_of_range_strategy_pick_rejected(self, moons_pool):
        weights, y, seeds = moons_pool
        with pytest.raises(ConfigurationError, match="out-of-range"):
            run_active_learning(
                weights, y, seed_indices=seeds, budget=1,
                strategy=lambda w, n, labels, rng: 10**9,
            )
