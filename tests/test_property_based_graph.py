"""Property-based tests for graph constructions and the anchored solver."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.anchors import solve_anchored
from repro.core.hard import solve_hard_criterion
from repro.graph.similarity import (
    epsilon_graph,
    full_kernel_graph,
    knn_graph,
    local_scaling_graph,
)


@st.composite
def point_clouds(draw, min_points=8, max_points=20, dim=2):
    n = draw(st.integers(min_points, max_points))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return rng.uniform(-2.0, 2.0, size=(n, dim))


class TestConstructionProperties:
    @given(x=point_clouds())
    @settings(max_examples=40, deadline=None)
    def test_all_constructions_symmetric_nonnegative(self, x):
        n = x.shape[0]
        graphs = [
            full_kernel_graph(x, bandwidth=1.0),
            knn_graph(x, k=min(3, n - 1), bandwidth=1.0),
            epsilon_graph(x, radius=1.0, bandwidth=1.0),
            local_scaling_graph(x, k=min(3, n - 1)),
        ]
        for graph in graphs:
            w = graph.dense_weights()
            np.testing.assert_allclose(w, w.T, atol=1e-10)
            assert w.min() >= 0.0

    @given(x=point_clouds(), scale=st.floats(0.1, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_local_scaling_is_scale_invariant(self, x, scale):
        """Rescaling all inputs by c leaves local-scaling weights fixed
        (both d^2 and sigma_i sigma_j pick up c^2)."""
        k = min(3, x.shape[0] - 1)
        base = local_scaling_graph(x, k=k).dense_weights()
        scaled = local_scaling_graph(scale * x, k=k).dense_weights()
        np.testing.assert_allclose(scaled, base, atol=1e-9)

    @given(x=point_clouds())
    @settings(max_examples=40, deadline=None)
    def test_knn_weights_subset_of_full(self, x):
        """k-NN weights equal the full graph's wherever an edge survives."""
        k = min(3, x.shape[0] - 1)
        full = full_kernel_graph(x, bandwidth=1.0).dense_weights()
        sparse_w = knn_graph(x, k=k, bandwidth=1.0).dense_weights()
        mask = sparse_w > 0
        np.testing.assert_allclose(sparse_w[mask], full[mask], atol=1e-12)

    @given(x=point_clouds(), radius=st.floats(0.2, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_epsilon_monotone_in_radius(self, x, radius):
        """A larger radius never removes edges."""
        small = epsilon_graph(x, radius=radius, bandwidth=1.0).dense_weights()
        large = epsilon_graph(x, radius=2 * radius, bandwidth=1.0).dense_weights()
        assert np.all((small > 0) <= (large > 0))


class TestAnchoredProperties:
    @st.composite
    @staticmethod
    def anchored_problems(draw):
        n = draw(st.integers(4, 8))
        m = draw(st.integers(3, 8))
        seed = draw(st.integers(0, 2**31 - 1))
        rng = np.random.default_rng(seed)
        x_labeled = rng.uniform(-1, 1, size=(n, 2))
        x_unlabeled = rng.uniform(-1, 1, size=(m, 2))
        y = rng.uniform(0, 1, size=n)
        return x_labeled, y, x_unlabeled

    @given(problem=anchored_problems())
    @settings(max_examples=30, deadline=None)
    def test_full_budget_exactness(self, problem):
        x_labeled, y, x_unlabeled = problem
        fit = solve_anchored(
            x_labeled, y, x_unlabeled,
            n_anchors=x_unlabeled.shape[0], bandwidth=1.5, seed=0,
        )
        x_all = np.vstack([x_labeled, x_unlabeled])
        exact = solve_hard_criterion(
            full_kernel_graph(x_all, bandwidth=1.5).weights, y
        )
        np.testing.assert_allclose(
            fit.unlabeled_scores, exact.unlabeled_scores, atol=1e-8
        )

    @given(problem=anchored_problems(), budget=st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_reduced_budget_respects_label_range(self, problem, budget):
        """Anchored scores stay inside [min y, max y]: the reduced solve
        obeys the maximum principle and induction is a convex average."""
        x_labeled, y, x_unlabeled = problem
        fit = solve_anchored(
            x_labeled, y, x_unlabeled,
            n_anchors=budget, bandwidth=1.5, seed=0,
        )
        assert fit.unlabeled_scores.min() >= y.min() - 1e-8
        assert fit.unlabeled_scores.max() <= y.max() + 1e-8
