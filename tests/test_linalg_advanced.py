"""Unit tests for SOR and preconditioned CG."""

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import ConfigurationError, ConvergenceError, DataValidationError
from repro.linalg.advanced import (
    jacobi_preconditioner,
    preconditioned_conjugate_gradient,
    sor,
)
from repro.linalg.iterative import conjugate_gradient, gauss_seidel


def _spd(rng, n, condition=10.0):
    q, _ = np.linalg.qr(rng.normal(size=(n, n)))
    eigenvalues = np.linspace(1.0, condition, n)
    return q @ np.diag(eigenvalues) @ q.T


class TestSor:
    def test_solves_spd(self, rng):
        a = _spd(rng, 10)
        x_true = rng.normal(size=10)
        result = sor(a, a @ x_true, omega=1.2, tol=1e-12, max_iter=50_000)
        np.testing.assert_allclose(result.x, x_true, atol=1e-7)

    def test_omega_one_is_gauss_seidel(self, rng):
        a = _spd(rng, 8)
        b = rng.normal(size=8)
        via_sor = sor(a, b, omega=1.0, tol=1e-11, max_iter=50_000)
        via_gs = gauss_seidel(a, b, tol=1e-11, max_iter=50_000)
        assert via_sor.iterations == via_gs.iterations
        np.testing.assert_allclose(via_sor.x, via_gs.x, atol=1e-9)

    def test_over_relaxation_can_accelerate(self, rng):
        """On an ill-conditioned SPD system a good omega beats omega=1."""
        a = _spd(rng, 30, condition=200.0)
        b = rng.normal(size=30)
        plain = sor(a, b, omega=1.0, tol=1e-10, max_iter=200_000)
        accelerated = sor(a, b, omega=1.8, tol=1e-10, max_iter=200_000)
        assert accelerated.iterations < plain.iterations

    def test_invalid_omega_raises(self, rng):
        a = _spd(rng, 4)
        for omega in (0.0, 2.0, -1.0, 2.5):
            with pytest.raises(ConfigurationError):
                sor(a, np.ones(4), omega=omega)

    def test_zero_diagonal_raises(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(DataValidationError, match="diagonal"):
            sor(a, np.ones(2))

    def test_budget_exhaustion_raises(self, rng):
        a = _spd(rng, 20, condition=1000.0)
        with pytest.raises(ConvergenceError):
            sor(a, rng.normal(size=20), omega=0.1, tol=1e-14, max_iter=3)


class TestPreconditionedCg:
    def test_matches_plain_cg_solution(self, rng):
        a = _spd(rng, 15)
        b = rng.normal(size=15)
        plain = conjugate_gradient(a, b, tol=1e-12).x
        pre = preconditioned_conjugate_gradient(a, b, tol=1e-12).x
        np.testing.assert_allclose(pre, plain, atol=1e-8)

    def test_jacobi_preconditioner_helps_on_scaled_system(self, rng):
        """A badly row-scaled SPD system: diagonal preconditioning cuts
        the iteration count."""
        a = _spd(rng, 40)
        scales = np.logspace(0, 3, 40)
        a = scales[:, None] * a * scales[None, :]  # still SPD
        b = rng.normal(size=40)
        plain = conjugate_gradient(a, b, tol=1e-10, max_iter=100_000)
        pre = preconditioned_conjugate_gradient(a, b, tol=1e-10, max_iter=100_000)
        assert pre.iterations < plain.iterations

    def test_custom_preconditioner(self, rng):
        a = _spd(rng, 10)
        b = rng.normal(size=10)
        identity_pre = preconditioned_conjugate_gradient(
            a, b, preconditioner=lambda v: v, tol=1e-12
        )
        plain = conjugate_gradient(a, b, tol=1e-12)
        # Identity preconditioner IS plain CG.
        assert identity_pre.iterations == plain.iterations

    def test_sparse_input(self, rng):
        a = _spd(rng, 12)
        b = rng.normal(size=12)
        dense = preconditioned_conjugate_gradient(a, b, tol=1e-12).x
        sp = preconditioned_conjugate_gradient(sparse.csr_matrix(a), b, tol=1e-12).x
        np.testing.assert_allclose(sp, dense, atol=1e-8)

    def test_indefinite_raises(self):
        # Positive diagonal (so the Jacobi preconditioner builds) but
        # indefinite overall: eigenvalues 4 and -2.
        a = np.array([[1.0, 3.0], [3.0, 1.0]])
        with pytest.raises(ConvergenceError, match="positive definite"):
            preconditioned_conjugate_gradient(a, np.array([1.0, -1.0]))

    def test_jacobi_preconditioner_validation(self):
        with pytest.raises(DataValidationError, match="positive diagonal"):
            jacobi_preconditioner(np.diag([1.0, 0.0]))

    def test_hard_criterion_system(self, small_problem):
        """PCG solves the grounded Laplacian to direct-solver accuracy."""
        data, weights, _ = small_problem
        n = data.n_labeled
        degrees = weights.sum(axis=1)
        grounded = np.diag(degrees[n:]) - weights[n:, n:]
        rhs = weights[n:, :n] @ data.y_labeled
        direct = np.linalg.solve(grounded, rhs)
        pre = preconditioned_conjugate_gradient(grounded, rhs, tol=1e-12).x
        np.testing.assert_allclose(pre, direct, atol=1e-8)
