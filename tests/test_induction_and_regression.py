"""Tests for out-of-sample induction and the regression-case DGP."""

import numpy as np
import pytest

from repro.core.estimators import GraphSSLClassifier, GraphSSLRegressor
from repro.datasets.synthetic import make_regression_dataset, true_regression
from repro.exceptions import DataValidationError, NotFittedError


class TestInduction:
    @pytest.fixture
    def fitted(self):
        data = make_regression_dataset(60, 20, seed=0)
        model = GraphSSLRegressor(bandwidth="paper")
        model.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)
        return data, model

    def test_induce_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            GraphSSLRegressor().induce(np.zeros((1, 5)))

    def test_shape(self, fitted):
        data, model = fitted
        out = model.induce(data.x_unlabeled[:4])
        assert out.shape == (4,)

    def test_induction_is_weighted_average_of_scores(self, fitted):
        """The induced value lies within the fitted score range."""
        data, model = fitted
        out = model.induce(np.vstack([data.x_labeled[:3], data.x_unlabeled[:3]]))
        scores = model.scores_
        assert out.min() >= scores.min() - 1e-10
        assert out.max() <= scores.max() + 1e-10

    def test_induction_near_training_point_tracks_its_score(self):
        """With a local kernel, inducing AT a fitted point returns nearly
        that point's fitted score."""
        data = make_regression_dataset(80, 20, seed=1)
        model = GraphSSLRegressor(bandwidth=0.05)
        try:
            model.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)
        except Exception:
            pytest.skip("graph disconnected at this tiny bandwidth")
        induced = model.induce(data.x_unlabeled)
        fitted_scores = model.predict()
        # Self-weight dominates at a tiny bandwidth.
        assert np.max(np.abs(induced - fitted_scores)) < 0.2

    def test_induction_approximates_truth_statistically(self):
        """Induced predictions at fresh points track q(X)."""
        data = make_regression_dataset(800, 50, noise_std=0.05, seed=2)
        model = GraphSSLRegressor(bandwidth="paper")
        model.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)
        from repro.datasets.synthetic import truncated_mvn_inputs

        fresh = truncated_mvn_inputs(30, seed=3)
        induced = model.induce(fresh)
        truth = true_regression(fresh, "model1")
        rmse = float(np.sqrt(np.mean((induced - truth) ** 2)))
        assert rmse < 0.15

    def test_dimension_mismatch(self, fitted):
        _, model = fitted
        with pytest.raises(DataValidationError, match="columns"):
            model.induce(np.zeros((2, 3)))

    def test_no_support_raises(self):
        from repro.kernels.library import BoxcarKernel

        data = make_regression_dataset(30, 10, seed=4)
        model = GraphSSLRegressor(kernel=BoxcarKernel(), bandwidth=2.0)
        model.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)
        far = np.full((1, 5), 100.0)
        with pytest.raises(DataValidationError, match="support"):
            model.induce(far)

    def test_classifier_induction_outputs(self):
        from repro.datasets.synthetic import make_synthetic_dataset

        data = make_synthetic_dataset(60, 20, seed=5)
        model = GraphSSLClassifier(bandwidth="paper")
        model.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)
        proba = model.induce_proba(data.x_unlabeled[:5])
        labels = model.induce_labels(data.x_unlabeled[:5])
        assert proba.min() >= 0.0 and proba.max() <= 1.0
        assert set(np.unique(labels)) <= {0.0, 1.0}


class TestRegressionDataset:
    def test_responses_are_continuous(self):
        data = make_regression_dataset(200, 30, seed=0)
        assert len(np.unique(data.y_labeled)) > 100  # not binary

    def test_responses_bounded_around_q(self):
        noise_std = 0.1
        data = make_regression_dataset(500, 50, noise_std=noise_std, seed=1)
        residuals = data.y_labeled - data.q_labeled
        half_width = noise_std * np.sqrt(3.0)
        assert np.max(np.abs(residuals)) <= half_width + 1e-12
        assert abs(float(np.std(residuals)) - noise_std) < 0.02

    def test_zero_noise_gives_exact_q(self):
        data = make_regression_dataset(50, 10, noise_std=0.0, seed=2)
        np.testing.assert_allclose(data.y_labeled, data.q_labeled)

    def test_invalid_noise_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            make_regression_dataset(10, 5, noise_std=-0.1)

    def test_consistency_of_hard_criterion_on_regression(self):
        """Theorem II.1's regression case: RMSE falls with n."""
        from repro.core.hard import solve_hard_criterion
        from repro.graph.similarity import full_kernel_graph
        from repro.kernels.bandwidth import paper_bandwidth_rule

        def mean_rmse(n, reps=10):
            total = 0.0
            for seed in range(reps):
                data = make_regression_dataset(n, 15, seed=100 + seed)
                bandwidth = paper_bandwidth_rule(n, 5)
                graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
                fit = solve_hard_criterion(
                    graph.weights, data.y_labeled, check_reachability=False
                )
                total += float(
                    np.sqrt(np.mean((fit.unlabeled_scores - data.q_unlabeled) ** 2))
                )
            return total / reps

        assert mean_rmse(400) < mean_rmse(50)


class TestBootstrapCi:
    def test_interval_contains_mean_for_stable_metric(self):
        from repro.experiments.runner import run_replicates

        summary = run_replicates(
            lambda rng: {"v": float(rng.normal(10.0, 1.0))},
            n_replicates=50,
            seed=0,
        )
        low, high = summary.bootstrap_ci("v")
        assert low < summary.mean("v") < high
        assert high - low < 2.0  # roughly 4 * sem

    def test_degenerate_distribution(self):
        from repro.experiments.runner import run_replicates

        summary = run_replicates(lambda rng: {"v": 3.0}, n_replicates=5, seed=0)
        low, high = summary.bootstrap_ci("v")
        assert low == high == 3.0

    def test_validation(self):
        from repro.exceptions import ConfigurationError
        from repro.experiments.runner import run_replicates

        summary = run_replicates(lambda rng: {"v": 1.0}, n_replicates=3, seed=0)
        with pytest.raises(ConfigurationError):
            summary.bootstrap_ci("v", level=1.5)
        with pytest.raises(ConfigurationError):
            summary.bootstrap_ci("v", n_resamples=0)
