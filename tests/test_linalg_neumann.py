"""Unit tests for repro.linalg.neumann."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, DataValidationError
from repro.linalg.neumann import neumann_inverse, neumann_partial_sums


def _contraction(rng, n, radius=0.5):
    """Random matrix rescaled to the given spectral radius."""
    m = rng.normal(size=(n, n))
    return m * (radius / np.max(np.abs(np.linalg.eigvals(m))))


class TestPartialSums:
    def test_geometric_scalar_case(self):
        m = np.array([[0.5]])
        total, diag = neumann_partial_sums(m, n_terms=10)
        expected = sum(0.5**k for k in range(1, 11))
        assert total[0, 0] == pytest.approx(expected)
        assert diag.terms == 10
        assert len(diag.max_norms) == 10

    def test_max_norms_track_partial_sums(self, rng):
        m = _contraction(rng, 4)
        _, diag = neumann_partial_sums(m, n_terms=5)
        power = m.copy()
        total = m.copy()
        for k in range(1, 5):
            power = power @ m
            total = total + power
            assert diag.max_norms[k] == pytest.approx(np.max(np.abs(total)))

    def test_spectral_radius_reported(self, rng):
        m = _contraction(rng, 5, radius=0.7)
        _, diag = neumann_partial_sums(m, n_terms=3)
        assert diag.spectral_radius == pytest.approx(0.7, rel=1e-8)
        assert diag.converged

    def test_divergent_flagged(self, rng):
        m = _contraction(rng, 4, radius=1.5)
        _, diag = neumann_partial_sums(m, n_terms=3)
        assert not diag.converged

    def test_requires_positive_terms(self, rng):
        with pytest.raises(DataValidationError):
            neumann_partial_sums(_contraction(rng, 3), n_terms=0)


class TestNeumannInverse:
    def test_matches_direct_inverse(self, rng):
        m = _contraction(rng, 6, radius=0.6)
        inverse, diag = neumann_inverse(m, tol=1e-14)
        np.testing.assert_allclose(inverse, np.linalg.inv(np.eye(6) - m), atol=1e-9)
        assert diag.converged

    def test_zero_matrix_gives_identity(self):
        inverse, _ = neumann_inverse(np.zeros((3, 3)))
        np.testing.assert_allclose(inverse, np.eye(3))

    def test_empty_matrix(self):
        inverse, diag = neumann_inverse(np.zeros((0, 0)))
        assert inverse.shape == (0, 0)
        assert diag.converged

    def test_divergent_raises_with_radius_in_message(self, rng):
        m = _contraction(rng, 4, radius=1.2)
        with pytest.raises(ConvergenceError, match="spectral radius"):
            neumann_inverse(m, max_terms=50)

    def test_proof_regime_tiny_elements(self, small_problem):
        """On the paper's graph, D22^{-1} W22 has a convergent series and
        the remainder S has tiny entries, as the proof asserts."""
        data, weights, _ = small_problem
        n = data.n_labeled
        degrees = weights.sum(axis=1)
        iterated = weights[n:, n:] / degrees[n:, None]
        inverse, diag = neumann_inverse(iterated)
        assert diag.converged
        assert diag.spectral_radius < 1.0
        s_matrix = inverse - np.eye(iterated.shape[0])
        direct = np.linalg.inv(np.eye(iterated.shape[0]) - iterated)
        np.testing.assert_allclose(inverse, direct, atol=1e-8)
        assert np.max(np.abs(s_matrix)) < 1.5  # finite "tiny elements"
