"""OpenMetrics exposition: golden format, parse-back, and the parser's teeth.

The golden file (``tests/data/golden_serving.prom``) pins the exact text
a fixed registry renders to — any formatting drift (bucket bounds,
suffix conventions, sample ordering) fails byte-for-byte.  The parser
tests then prove the exposition is *valid* OpenMetrics by our own
validator, and that the validator actually rejects malformed input
rather than rubber-stamping whatever the renderer emits.

The hypothesis test at the bottom is satellite 3's other half: the
log-bucket histogram's quantile error stays within its advertised
relative bound on arbitrary positive samples.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import LogBucketHistogram, MetricsRegistry
from repro.obs.openmetrics import (
    OpenMetricsError,
    escape_label_value,
    parse_openmetrics,
    render_openmetrics,
    sanitize_metric_name,
)

GOLDEN = Path(__file__).parent / "data" / "golden_serving.prom"


def golden_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("serving.request.count.nw").inc(5)
    reg.counter("serving.request.outcome.ok").inc(5)
    reg.counter("serving.drift.flagged").inc(2)
    reg.gauge("serving.request.throughput_qps").set(1234.5)
    reg.gauge("serving.drift.nystrom_margin_min").set(-0.25)
    hist = reg.histogram("solve.residual")
    for value in (0.25, 0.5, 0.75, 1.0):
        hist.observe(value)
    reg.log_histogram("serving.request.latency_s").observe_many(
        np.array([0.001, 0.002, 0.004, 0.008, 0.0])
    )
    return reg


class TestGoldenFormat:
    def test_exposition_matches_golden_file(self):
        assert render_openmetrics(golden_registry().snapshot()) == GOLDEN.read_text()

    def test_golden_file_is_valid(self):
        families = parse_openmetrics(GOLDEN.read_text())
        assert set(families) == {
            "serving_drift_flagged",
            "serving_drift_nystrom_margin_min",
            "serving_request_count_nw",
            "serving_request_latency_s",
            "serving_request_outcome_ok",
            "serving_request_throughput_qps",
            "solve_residual",
        }

    def test_ends_with_eof(self):
        assert render_openmetrics({}).endswith("# EOF\n")


class TestParseBackRoundTrip:
    def test_counter_and_gauge_values_survive(self):
        families = parse_openmetrics(render_openmetrics(golden_registry().snapshot()))
        counter = families["serving_request_count_nw"]
        assert counter.type == "counter"
        assert counter.samples[0].value == 5
        gauge = families["serving_drift_nystrom_margin_min"]
        assert gauge.type == "gauge"
        assert gauge.samples[0].value == -0.25

    def test_histogram_buckets_cumulative_and_complete(self):
        families = parse_openmetrics(render_openmetrics(golden_registry().snapshot()))
        family = families["serving_request_latency_s"]
        assert family.type == "histogram"
        buckets = [
            s for s in family.samples
            if s.name == "serving_request_latency_s_bucket"
        ]
        counts = [s.value for s in buckets]
        assert counts == sorted(counts)
        assert buckets[0].labels["le"] == "0"  # zero bucket leads
        assert buckets[-1].labels["le"] == "+Inf"
        count = next(
            s.value for s in family.samples
            if s.name == "serving_request_latency_s_count"
        )
        assert buckets[-1].value == count == 5

    def test_summary_quantiles(self):
        families = parse_openmetrics(render_openmetrics(golden_registry().snapshot()))
        family = families["solve_residual"]
        assert family.type == "summary"
        quantiles = {
            s.labels["quantile"]: s.value
            for s in family.samples
            if "quantile" in s.labels
        }
        assert set(quantiles) == {"0.5", "0.9", "0.95", "0.99"}
        assert quantiles["0.5"] <= quantiles["0.99"]


class TestNameAndLabelHandling:
    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("serving.request.latency_s") == (
            "serving_request_latency_s"
        )
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("a-b c") == "a_b_c"

    def test_label_value_escaping_round_trips(self):
        tricky = 'back\\slash "quote" new\nline'
        escaped = escape_label_value(tricky)
        assert "\n" not in escaped
        text = (
            "# TYPE t gauge\n"
            f't{{k="{escaped}"}} 1\n'
            "# EOF\n"
        )
        families = parse_openmetrics(text)
        assert families["t"].samples[0].labels["k"] == tricky


class TestParserRejections:
    def assert_invalid(self, text: str, match: str):
        with pytest.raises(OpenMetricsError, match=match):
            parse_openmetrics(text)

    def test_missing_eof(self):
        self.assert_invalid("# TYPE t gauge\nt 1\n", "EOF")

    def test_sample_before_type(self):
        self.assert_invalid("t 1\n# TYPE t gauge\n# EOF\n", "TYPE")

    def test_duplicate_type(self):
        self.assert_invalid(
            "# TYPE t gauge\n# TYPE t gauge\nt 1\n# EOF\n", "duplicate"
        )

    def test_negative_counter(self):
        self.assert_invalid(
            "# TYPE t counter\nt_total -1\n# EOF\n", "non-monotonic"
        )

    def test_quantile_out_of_range(self):
        self.assert_invalid(
            '# TYPE t summary\nt{quantile="1.5"} 1\nt_sum 1\nt_count 1\n# EOF\n',
            "quantile",
        )

    def test_non_cumulative_buckets(self):
        self.assert_invalid(
            "# TYPE t histogram\n"
            't_bucket{le="1"} 5\n'
            't_bucket{le="2"} 3\n'
            't_bucket{le="+Inf"} 5\n'
            "t_sum 1\nt_count 5\n# EOF\n",
            "cumulative",
        )

    def test_inf_bucket_must_match_count(self):
        self.assert_invalid(
            "# TYPE t histogram\n"
            't_bucket{le="1"} 3\n'
            't_bucket{le="+Inf"} 3\n'
            "t_sum 1\nt_count 4\n# EOF\n",
            "count",
        )

    def test_unknown_render_kind_raises(self):
        with pytest.raises(ValueError, match="kind"):
            render_openmetrics({"x": {"kind": "mystery", "value": 1}})


class TestCliExportAndLint:
    @pytest.fixture()
    def dump(self, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        path.write_text(
            json.dumps(
                {"schema": "repro.metrics/v1", "metrics": golden_registry().snapshot()}
            )
        )
        return path

    def test_export_then_lint_round_trip(self, dump, tmp_path, capsys):
        from repro.cli import main

        prom = tmp_path / "out.prom"
        assert main(["obs", "export-metrics", str(dump), "-o", str(prom)]) == 0
        assert prom.read_text().endswith("# EOF\n")
        assert main(["obs", "lint-metrics", str(prom)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_export_to_stdout(self, dump, capsys):
        from repro.cli import main

        assert main(["obs", "export-metrics", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE serving_request_latency_s histogram" in out

    def test_lint_rejects_invalid_file(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.prom"
        bad.write_text("t 1\n")  # no TYPE, no EOF
        assert main(["obs", "lint-metrics", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_lint_missing_file_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["obs", "lint-metrics", str(tmp_path / "absent.prom")]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestLogBucketRelativeErrorProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(
                min_value=1e-9,
                max_value=1e9,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=400,
        ),
        st.sampled_from([0.25, 0.5, 0.75, 0.9, 0.99]),
    )
    def test_quantile_relative_error_bound(self, values, q):
        hist = LogBucketHistogram("h")
        hist.observe_many(np.asarray(values))
        # nearest-rank exact quantile — the estimator the sketch bounds
        ranked = sorted(values)
        rank = max(1, int(np.ceil(q * len(ranked))))
        exact = ranked[rank - 1]
        approx = hist.quantile(q)
        assert abs(approx - exact) <= hist.relative_error * exact + 1e-12
