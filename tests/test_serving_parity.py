"""Transductive-parity harness for the inductive serving layer.

Every serving method answers the same question: *what would the
transductive solver say about this query if it were a vertex of the
graph?*  The oracle here makes that literal — for each query it builds
the extended ``(N+1, N+1)`` weight matrix from the model's own
:meth:`~repro.serving.model.GraphSSLModel.query_weights` rows (the
frozen-graph attachment convention), re-solves the criterion from
scratch, and reads off the query vertex's score.

Documented accuracy tiers (max |prediction - oracle| per query):

``exact``
    The incremental bordered solve must match a rebuild-and-resolve to
    solver tolerance — ``1e-8`` required by the acceptance gate;
    observed ~1e-14.
``nw``
    The one-step Nadaraya-Watson rule over fitted scores; a smoothing
    approximation.  Tier ``5e-2``; observed <= 6e-3 on every parity
    dataset.
``nystrom``
    Truncated eigenbasis extension (stability-cut spectrum).  Tier
    ``2.5e-1``; observed <= 1.3e-1.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.hard import solve_hard_criterion
from repro.core.incremental import IncrementalHarmonicLabeler
from repro.core.soft import solve_soft_criterion
from repro.core.uncertainty import gaussian_field_posterior
from repro.datasets.coil import make_coil_like
from repro.datasets.synthetic import make_regression_dataset, truncated_mvn_inputs
from repro.serving import GraphSSLModel

#: The documented parity tiers the suite (and the acceptance gate) enforce.
PARITY_ATOL = {"exact": 1e-8, "nw": 5e-2, "nystrom": 2.5e-1}


def extended_weights(model: GraphSSLModel, query: np.ndarray) -> np.ndarray:
    """The ``(N+1, N+1)`` dense weights of the graph with ``query`` appended.

    Built from the model's own attachment rows, so the oracle solves
    exactly the graph the serving methods claim to answer questions
    about (reference-reference edges frozen, query attached one-sidedly
    by its graph family's rule).
    """
    row = model.query_weights(query[None, :])[0]
    base = model.graph_.dense_weights()
    n_total = base.shape[0]
    ext = np.zeros((n_total + 1, n_total + 1))
    ext[:n_total, :n_total] = base
    ext[n_total, row.indices] = row.weights
    ext[row.indices, n_total] = row.weights
    ext[n_total, n_total] = row.self_weight
    return ext


def oracle_prediction(model: GraphSSLModel, query: np.ndarray) -> float:
    """Rebuild-and-resolve ground truth for one query point."""
    ext = extended_weights(model, query)
    if model.lam == 0.0:
        result = solve_hard_criterion(ext, model._y)
    else:
        result = solve_soft_criterion(ext, model._y, model.lam)
    return float(result.scores[-1])


def _epsilon_radius(x_all: np.ndarray) -> float:
    """A radius keeping an epsilon graph on ``x_all`` well connected.

    The 0.35 distance quantile keeps degrees homogeneous enough for the
    Nystrom stability cut to retain a usable spectrum; much sparser
    epsilon graphs push boundary queries' degrees below the cut's
    in-distribution assumption.
    """
    from scipy.spatial.distance import pdist

    return float(np.quantile(pdist(x_all), 0.35))


def _synthetic_model(graph: str, *, lam: float = 0.0, seed: int = 0):
    rng = np.random.default_rng(seed)
    data = make_regression_dataset(40, 160, seed=rng)
    queries = truncated_mvn_inputs(8, seed=rng)
    params: dict = {}
    if graph == "knn":
        params["k"] = 12
    elif graph == "epsilon":
        params["radius"] = _epsilon_radius(data.x_all)
    model = GraphSSLModel(lam=lam, graph=graph, graph_params=params)
    model.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)
    return model, queries


def _coil_model(seed: int = 0):
    data = make_coil_like(image_size=8, images_per_class=40, seed=seed)
    x = data.images.reshape(data.n_samples, -1).astype(np.float64)
    y = data.binary_labels.astype(np.float64)
    # Hold the last 6 images out as queries; label the first 30.
    n_labeled, n_queries = 30, 6
    model = GraphSSLModel(graph="full")
    model.fit(
        x[:n_labeled], y[:n_labeled], x[n_labeled : data.n_samples - n_queries]
    )
    return model, x[data.n_samples - n_queries :]


@pytest.fixture(scope="module")
def synthetic_models():
    """One fitted hard-criterion model per graph family, plus queries."""
    return {graph: _synthetic_model(graph) for graph in ("full", "knn", "epsilon")}


class TestExactParity:
    """``method="exact"`` must match rebuild-and-resolve to 1e-8."""

    @pytest.mark.parametrize("graph", ["full", "knn", "epsilon"])
    def test_matches_oracle_on_synthetic(self, synthetic_models, graph):
        model, queries = synthetic_models[graph]
        served = model.predict(queries, method="exact")
        expected = np.array([oracle_prediction(model, q) for q in queries])
        np.testing.assert_allclose(served, expected, atol=PARITY_ATOL["exact"])

    def test_matches_oracle_on_coil_like(self):
        model, queries = _coil_model()
        served = model.predict(queries, method="exact")
        expected = np.array([oracle_prediction(model, q) for q in queries])
        np.testing.assert_allclose(served, expected, atol=PARITY_ATOL["exact"])

    def test_soft_criterion_parity(self):
        model, queries = _synthetic_model("full", lam=0.5)
        served = model.predict(queries, method="exact")
        expected = np.array([oracle_prediction(model, q) for q in queries])
        np.testing.assert_allclose(served, expected, atol=PARITY_ATOL["exact"])

    def test_labeled_only_reference(self):
        """m = 0: the bordered system degenerates to a scalar solve."""
        rng = np.random.default_rng(3)
        data = make_regression_dataset(30, 1, seed=rng)
        model = GraphSSLModel(graph="full")
        # Fit with no unlabeled block at all.
        model.fit(data.x_labeled, data.y_labeled)
        queries = truncated_mvn_inputs(4, seed=rng)
        served = model.predict(queries, method="exact")
        expected = np.array([oracle_prediction(model, q) for q in queries])
        np.testing.assert_allclose(served, expected, atol=PARITY_ATOL["exact"])


class TestFastMethodTiers:
    """NW / Nystrom stay inside their documented deviation tiers."""

    @pytest.mark.parametrize("graph", ["full", "knn", "epsilon"])
    @pytest.mark.parametrize("method", ["nw", "nystrom"])
    def test_within_tier_on_synthetic(self, synthetic_models, graph, method):
        model, queries = synthetic_models[graph]
        served = model.predict(queries, method=method)
        expected = np.array([oracle_prediction(model, q) for q in queries])
        deviation = np.max(np.abs(served - expected))
        assert deviation <= PARITY_ATOL[method], (
            f"{method} deviation {deviation:.3g} exceeds its "
            f"{PARITY_ATOL[method]:g} tier on the {graph} graph"
        )

    @pytest.mark.parametrize("method", ["nw", "nystrom"])
    def test_within_tier_on_coil_like(self, method):
        model, queries = _coil_model()
        served = model.predict(queries, method=method)
        expected = np.array([oracle_prediction(model, q) for q in queries])
        assert np.max(np.abs(served - expected)) <= PARITY_ATOL[method]

    def test_nw_prediction_is_convex_combination(self, synthetic_models):
        """NW output lies in the hull of the fitted scores by construction."""
        model, queries = synthetic_models["full"]
        served = model.predict(queries, method="nw")
        low, high = model.scores_.min(), model.scores_.max()
        assert np.all(served >= low - 1e-12)
        assert np.all(served <= high + 1e-12)


class TestIntervalParity:
    """Served credible intervals equal the Gaussian-field posterior's."""

    def test_variance_matches_gaussian_field(self, synthetic_models):
        model, queries = synthetic_models["full"]
        query = queries[0]
        pred, lower, upper = model.predict(
            query[None, :], method="exact", return_interval=True
        )
        ext = extended_weights(model, query)
        posterior = gaussian_field_posterior(ext, model._y, field_scale=1.0)
        sd = float(np.sqrt(posterior.variance[-1]))
        mean = float(posterior.mean[-1])
        assert pred[0] == pytest.approx(mean, abs=1e-8)
        assert upper[0] - pred[0] == pytest.approx(1.96 * sd, abs=1e-6)
        assert pred[0] - lower[0] == pytest.approx(1.96 * sd, abs=1e-6)

    def test_approximate_interval_is_conservative(self, synthetic_models):
        """The NW-path first-order interval over-covers the exact one."""
        model, queries = synthetic_models["full"]
        _, lo_fast, hi_fast = model.predict(
            queries, method="nw", return_interval=True
        )
        _, lo_exact, hi_exact = model.predict(
            queries, method="exact", return_interval=True
        )
        assert np.all(hi_fast - lo_fast >= (hi_exact - lo_exact) - 1e-9)


class TestIncrementalComposability:
    """Serving composes with the incremental labeling machinery."""

    def test_serve_then_observe_matches_refit(self, synthetic_models):
        model, queries = synthetic_models["full"]
        query = queries[0]
        n = model.n_labeled_
        n_total = model.n_reference_
        ext = extended_weights(model, query)

        # The exact-served prediction is the posterior mean of the query
        # vertex in the extended field.
        labeler = IncrementalHarmonicLabeler(ext, model._y)
        served = float(model.predict(query[None, :], method="exact")[0])
        assert labeler.score_of(n_total) == pytest.approx(served, abs=1e-8)

        # Observing the query's true label then matches a from-scratch
        # hard solve with the query moved into the labeled block.
        y_new = 0.25
        labeler.observe(n_total, y_new)
        order = np.concatenate(
            [np.arange(n), [n_total], np.arange(n, n_total)]
        )
        permuted = ext[np.ix_(order, order)]
        y_enlarged = np.concatenate([model._y, [y_new]])
        refit = solve_hard_criterion(permuted, y_enlarged)
        np.testing.assert_allclose(
            labeler.scores, refit.scores[n + 1 :], atol=1e-8
        )


class TestPropertyBased:
    """Hypothesis sweeps over random reference sets and query batches."""

    @given(
        points=hnp.arrays(
            np.float64,
            shape=(11, 2),
            elements=st.floats(-2.0, 2.0, allow_nan=False, width=64),
            # Distinct coordinates: duplicate reference points create
            # twin vertices whose extended grounded system is
            # near-singular, and the iterative-vs-dense gap degrades to
            # the conditioning rather than the method (hypothesis's
            # value-reuse bias makes exact stacks the common draw, so
            # filtering them with assume() trips filter_too_much).
            unique=True,
        ),
        query=hnp.arrays(
            np.float64,
            shape=(2,),
            elements=st.floats(-2.0, 2.0, allow_nan=False, width=64),
        ),
    )
    @settings(max_examples=12, deadline=None)
    def test_exact_matches_oracle_on_random_graphs(self, points, query):
        from scipy.spatial.distance import pdist

        spread = pdist(points)
        assume(np.median(spread) > 1e-2)
        # Duplicate (or near-duplicate) reference points create twin
        # vertices: the extended grounded system turns near-singular and
        # iterative-vs-dense agreement degrades to the conditioning, not
        # the method — again no well-posed parity question at 1e-8.
        assume(float(np.min(spread)) > 1e-2)
        bandwidth = float(np.median(spread))
        # The query must be within kernel reach of the reference set:
        # many bandwidths out, its coupling mass underflows toward zero
        # and the oracle's extended grounded system is numerically
        # singular — there is no well-posed parity question to ask.
        nearest = float(np.min(np.linalg.norm(points - query, axis=1)))
        assume(nearest <= 3.0 * bandwidth)
        y = np.tanh(points[:4].sum(axis=1))
        model = GraphSSLModel(graph="full", bandwidth=bandwidth)
        model.fit(points[:4], y, points[4:])
        served = float(model.predict(query[None, :], method="exact")[0])
        assert served == pytest.approx(
            oracle_prediction(model, query), abs=PARITY_ATOL["exact"]
        )

    @given(
        batch=hnp.arrays(
            np.float64,
            shape=st.tuples(st.integers(1, 7), st.just(5)),
            elements=st.floats(-1.5, 1.5, allow_nan=False, width=64),
        ),
        method=st.sampled_from(["nw", "nystrom", "exact"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_query_batches_serve_finite_values(
        self, synthetic_models, batch, method
    ):
        model, _ = synthetic_models["full"]
        served = model.predict(batch, method=method)
        assert served.shape == (batch.shape[0],)
        assert np.all(np.isfinite(served))

    @given(
        query=hnp.arrays(
            np.float64,
            shape=(5,),
            elements=st.floats(-1.5, 1.5, allow_nan=False, width=64),
        ),
        copies=st.integers(2, 5),
        method=st.sampled_from(["nw", "nystrom", "exact"]),
    )
    @settings(max_examples=15, deadline=None)
    def test_duplicate_queries_answer_identically(
        self, synthetic_models, query, copies, method
    ):
        model, _ = synthetic_models["full"]
        batch = np.tile(query, (copies, 1))
        served = model.predict(batch, method=method)
        assert np.all(served == served[0])

    @given(
        direction=hnp.arrays(
            np.float64,
            shape=(5,),
            elements=st.floats(-1.0, 1.0, allow_nan=False, width=64),
        ),
        scale=st.floats(2.0, 4.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_far_outlier_queries_stay_in_score_hull(
        self, synthetic_models, direction, scale
    ):
        """Outliers get vanishing weights but NW still answers in-hull."""
        assume(np.linalg.norm(direction) > 1e-3)
        model, _ = synthetic_models["full"]
        outlier = scale * direction / np.linalg.norm(direction)
        served = float(model.predict(outlier[None, :], method="nw")[0])
        assert np.isfinite(served)
        assert model.scores_.min() - 1e-9 <= served <= model.scores_.max() + 1e-9
