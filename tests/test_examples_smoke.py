"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; letting them rot defeats
their purpose.  Each runs in a subprocess with the repository's source
tree on the path and must exit 0 with non-empty output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))

#: A marker phrase expected in each example's output, proving the
#: interesting part actually ran (not just the imports).
EXPECTED_PHRASES = {
    "quickstart.py": "hard criterion",
    "two_moons_ssl.py": "accuracy",
    "coil_image_classification.py": "AUC",
    "consistency_study.py": "Proposition II.2",
    "bandwidth_and_kernels.py": "ablation",
    "solver_backends.py": "complexity claim",
    "active_learning_demo.py": "learning curve",
    "multiclass_coil.py": "overall accuracy",
    "bring_your_own_data.py": "scored",
    "calibration_and_thresholds.py": "calibration artifact",
    "tracing_a_solve.py": "trace report",
    "benchmark_capture.py": "self-comparison ok: True",
}


def test_every_example_has_an_expectation():
    names = {path.name for path in EXAMPLE_SCRIPTS}
    assert names == set(EXPECTED_PHRASES), (
        "examples/ and EXPECTED_PHRASES drifted apart; update the test"
    )


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=lambda path: path.name
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stderr[-2000:]}"
    )
    assert EXPECTED_PHRASES[script.name] in result.stdout
