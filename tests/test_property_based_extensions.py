"""Property-based tests for the extension modules."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.incremental import IncrementalHarmonicLabeler
from repro.core.hard import solve_hard_criterion
from repro.core.multiclass import class_mass_normalize, solve_multiclass_hard
from repro.core.uncertainty import gaussian_field_posterior
from repro.graph.random_walk import absorption_probabilities, expected_hitting_times
from repro.graph.similarity import full_kernel_graph


@st.composite
def labeled_graphs(draw, min_labeled=2, max_labeled=7, min_unlabeled=2, max_unlabeled=6):
    """A (weights, y_binary) pair from a random point cloud."""
    n = draw(st.integers(min_labeled, max_labeled))
    m = draw(st.integers(min_unlabeled, max_unlabeled))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1.0, 1.0, size=(n + m, 3))
    weights = full_kernel_graph(x, bandwidth=1.5).dense_weights()
    y = rng.integers(0, 2, n).astype(float)
    return weights, y


class TestRandomWalkProperties:
    @given(problem=labeled_graphs())
    @settings(max_examples=40, deadline=None)
    def test_absorption_equals_harmonic(self, problem):
        weights, y = problem
        absorb = absorption_probabilities(weights, y)
        hard = solve_hard_criterion(weights, y).unlabeled_scores
        np.testing.assert_allclose(absorb, hard, atol=1e-8)

    @given(problem=labeled_graphs())
    @settings(max_examples=40, deadline=None)
    def test_absorption_in_unit_interval(self, problem):
        weights, y = problem
        absorb = absorption_probabilities(weights, y)
        assert absorb.min() >= -1e-9
        assert absorb.max() <= 1.0 + 1e-9

    @given(problem=labeled_graphs())
    @settings(max_examples=40, deadline=None)
    def test_hitting_times_at_least_one(self, problem):
        weights, y = problem
        times = expected_hitting_times(weights, y.shape[0])
        assert np.all(times >= 1.0 - 1e-9)


class TestUncertaintyProperties:
    @given(problem=labeled_graphs())
    @settings(max_examples=40, deadline=None)
    def test_posterior_variance_positive(self, problem):
        weights, y = problem
        posterior = gaussian_field_posterior(weights, y)
        assert np.all(posterior.variance > 0)

    @given(problem=labeled_graphs(), value=st.floats(0, 1))
    @settings(max_examples=30, deadline=None)
    def test_conditioning_never_raises_variance(self, problem, value):
        """Observing any vertex can only shrink remaining variances."""
        weights, y = problem
        labeler = IncrementalHarmonicLabeler(weights, y)
        before = labeler.variances
        vertex = labeler.unlabeled_vertices[0]
        labeler.observe(vertex, value)
        after = labeler.variances
        assert np.all(after <= before[1:] + 1e-10)

    @given(problem=labeled_graphs(), value=st.floats(0, 1))
    @settings(max_examples=30, deadline=None)
    def test_incremental_equals_resolve(self, problem, value):
        weights, y = problem
        n = y.shape[0]
        total = weights.shape[0]
        labeler = IncrementalHarmonicLabeler(weights, y)
        vertex = labeler.unlabeled_vertices[-1]
        labeler.observe(vertex, value)
        order = list(range(n)) + [vertex] + [
            i for i in range(n, total) if i != vertex
        ]
        w_perm = weights[np.ix_(order, order)]
        resolved = solve_hard_criterion(
            w_perm, np.concatenate([y, [value]])
        ).unlabeled_scores
        scale = 1.0 + abs(value) + float(np.abs(y).max())
        np.testing.assert_allclose(labeler.scores, resolved, atol=1e-7 * scale)


class TestMulticlassProperties:
    @st.composite
    @staticmethod
    def multiclass_problems(draw):
        k = draw(st.integers(2, 4))
        per_class = draw(st.integers(2, 3))
        m = draw(st.integers(2, 5))
        seed = draw(st.integers(0, 2**31 - 1))
        rng = np.random.default_rng(seed)
        n = k * per_class
        x = rng.uniform(-1.0, 1.0, size=(n + m, 2))
        weights = full_kernel_graph(x, bandwidth=1.5).dense_weights()
        y = np.repeat(np.arange(k, dtype=float), per_class)
        return weights, y

    @given(problem=multiclass_problems())
    @settings(max_examples=40, deadline=None)
    def test_rows_sum_to_one(self, problem):
        weights, y = problem
        fit = solve_multiclass_hard(weights, y)
        np.testing.assert_allclose(fit.scores.sum(axis=1), 1.0, atol=1e-8)

    @given(problem=multiclass_problems())
    @settings(max_examples=40, deadline=None)
    def test_scores_nonnegative(self, problem):
        weights, y = problem
        fit = solve_multiclass_hard(weights, y)
        assert fit.scores.min() >= -1e-9

    @given(problem=multiclass_problems())
    @settings(max_examples=40, deadline=None)
    def test_cmn_preserves_column_rankings(self, problem):
        weights, y = problem
        fit = solve_multiclass_hard(weights, y)
        normalized = class_mass_normalize(fit.scores, fit.priors)
        for k in range(fit.scores.shape[1]):
            np.testing.assert_array_equal(
                np.argsort(fit.scores[:, k], kind="stable"),
                np.argsort(normalized[:, k], kind="stable"),
            )
