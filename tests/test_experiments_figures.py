"""Tests for the per-figure experiment drivers (trimmed sizes).

These are *driver correctness* tests: each figure driver runs end to end
at a tiny configuration and produces a structurally valid result.  The
paper-shape assertions at realistic sizes live in the integration tests
and in the benchmarks.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.figures import (
    run_complexity_experiment,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_prop21_experiment,
    run_prop22_experiment,
    run_toy_example,
)
from repro.experiments.synthetic_sweep import run_synthetic_sweep, synthetic_replicate_rmse


class TestSyntheticSweepDriver:
    def test_replicate_returns_all_lambdas(self, rng):
        metrics = synthetic_replicate_rmse(
            rng, n_labeled=30, n_unlabeled=10, model="model1", lambdas=(0.0, 0.1)
        )
        assert set(metrics) == {"lambda=0", "lambda=0.1"}
        assert all(v >= 0 for v in metrics.values())

    def test_invalid_vary_raises(self):
        with pytest.raises(ConfigurationError):
            run_synthetic_sweep(
                name="x", model="model1", vary="k", values=(10,), fixed=5
            )

    def test_reproducible_with_seed(self):
        kwargs = dict(
            name="t", model="model1", vary="n", values=(20, 40), fixed=5,
            lambdas=(0.0, 0.1), n_replicates=3, seed=11,
        )
        a = run_synthetic_sweep(**kwargs)
        b = run_synthetic_sweep(**kwargs)
        np.testing.assert_array_equal(a.means, b.means)


@pytest.mark.parametrize(
    "driver,kwargs,x_label",
    [
        (run_figure1, {"n_values": (20, 50), "m": 5}, "n"),
        (run_figure2, {"m_values": (5, 15), "n": 30}, "m"),
        (run_figure3, {"n_values": (20, 50), "m": 5}, "n"),
        (run_figure4, {"m_values": (5, 15), "n": 30}, "m"),
    ],
)
class TestSyntheticFigures:
    def test_driver_structure(self, driver, kwargs, x_label):
        result = driver(lambdas=(0.0, 0.1), n_replicates=3, seed=0, **kwargs)
        assert result.x_label == x_label
        assert result.series_labels == ("lambda=0", "lambda=0.1")
        assert result.means.shape == (2, 2)
        assert np.all(result.means > 0)
        assert result.metric == "rmse"


class TestFigure5Driver:
    def test_tiny_run_structure(self):
        result = run_figure5(
            images_per_class=20,
            settings=("80/20",),
            lambdas=(0.0, 1.0),
            repeats=1,
            seed=0,
        )
        assert result.series_labels == ("ratio 80/20",)
        assert result.means.shape == (1, 2)
        assert np.all(result.means > 0.0) and np.all(result.means < 1.0)
        assert result.metric == "auc"

    def test_unknown_setting_raises(self):
        with pytest.raises(ConfigurationError, match="unknown settings"):
            run_figure5(settings=("30/70",), repeats=1)

    def test_prebuilt_dataset_used(self):
        from repro.datasets.coil import make_coil_like

        ds = make_coil_like(images_per_class=20, seed=3)
        result = run_figure5(
            dataset=ds, settings=("80/20",), lambdas=(0.0,), repeats=1, seed=0
        )
        assert result.meta["n_samples"] == ds.n_samples

    def test_single_class_dataset_rejected(self):
        """If every fold is degenerate (one class), the driver raises
        instead of silently returning empty averages."""
        import dataclasses

        from repro.datasets.coil import make_coil_like

        ds = make_coil_like(images_per_class=20, seed=3)
        broken = dataclasses.replace(
            ds, binary_labels=np.zeros_like(ds.binary_labels)
        )
        with pytest.raises(ConfigurationError, match="no valid splits"):
            run_figure5(
                dataset=broken, settings=("80/20",), lambdas=(0.0,),
                repeats=1, seed=0,
            )


class TestToyDriver:
    def test_closed_forms_hold(self):
        result = run_toy_example(seed=0)
        assert result.ok
        assert result.max_score_deviation < 1e-10
        assert result.max_inverse_deviation < 1e-10

    def test_empty_grid_raises(self):
        with pytest.raises(ConfigurationError):
            run_toy_example(grid=())


class TestComplexityDriver:
    def test_structure_and_positive_times(self):
        result = run_complexity_experiment(
            total_sizes=(60, 120), repeats=1, seed=0
        )
        assert len(result.hard_seconds) == 2
        assert all(t > 0 for t in result.hard_seconds)
        assert all(t > 0 for t in result.soft_full_seconds)
        assert len(result.speedups()) == 2
        rows = result.to_rows()
        assert len(rows) == 2 and len(rows[0]) == len(result.headers())

    def test_soft_full_slower_than_hard(self):
        """The headline: the (n+m)-sized solve costs more than the m-sized."""
        result = run_complexity_experiment(
            total_sizes=(300, 500), repeats=3, seed=0
        )
        assert result.soft_full_seconds[-1] > result.hard_seconds[-1]

    def test_invalid_fraction_raises(self):
        with pytest.raises(ConfigurationError):
            run_complexity_experiment(unlabeled_fraction=1.5)


class TestPropositionDrivers:
    def test_prop21_converges(self):
        result = run_prop21_experiment(n_labeled=40, n_unlabeled=10, seed=0)
        assert result.converges
        assert result.deviations[-1] < 1e-6
        assert len(result.to_rows()) == len(result.lambdas)

    def test_prop21_requires_decreasing_positive(self):
        with pytest.raises(ConfigurationError):
            run_prop21_experiment(lambdas=(0.1, 1.0))
        with pytest.raises(ConfigurationError):
            run_prop21_experiment(lambdas=(1.0, 0.0))

    def test_prop22_collapses_to_mean(self):
        result = run_prop22_experiment(n_labeled=40, n_unlabeled=10, seed=0)
        assert result.collapses_to_mean
        assert result.inconsistency_gap > 0
        # Distance to the mean vector shrinks along the grid.
        assert result.distance_to_mean[-1] < result.distance_to_mean[0]

    def test_prop22_requires_increasing(self):
        with pytest.raises(ConfigurationError):
            run_prop22_experiment(lambdas=(10.0, 1.0))
