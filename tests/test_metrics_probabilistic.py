"""Unit tests for the probabilistic/threshold metrics."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.metrics.probabilistic import (
    brier_score,
    log_loss,
    macro_ovr_auc,
    precision_recall_f1,
)


class TestBrier:
    def test_perfect_is_zero(self):
        y = np.array([0.0, 1.0, 1.0])
        assert brier_score(y, y) == 0.0

    def test_hand_computed(self):
        assert brier_score([1.0, 0.0], [0.8, 0.3]) == pytest.approx(
            (0.04 + 0.09) / 2
        )

    def test_constant_half_is_quarter(self):
        y = np.array([0.0, 1.0, 0.0, 1.0])
        assert brier_score(y, np.full(4, 0.5)) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(DataValidationError):
            brier_score([0.5], [0.5])
        with pytest.raises(DataValidationError):
            brier_score([1.0], [1.5])


class TestLogLoss:
    def test_perfect_is_near_zero(self):
        y = np.array([0.0, 1.0])
        assert log_loss(y, y) < 1e-10

    def test_hand_computed(self):
        got = log_loss([1.0], [0.5])
        assert got == pytest.approx(np.log(2.0))

    def test_confident_wrong_is_large_but_finite(self):
        value = log_loss([1.0], [0.0])
        assert np.isfinite(value)
        assert value > 20

    def test_proper_scoring(self, rng):
        """Truthful probabilities score better than distorted ones."""
        q = rng.uniform(0.1, 0.9, size=20_000)
        y = (rng.random(20_000) < q).astype(float)
        honest = log_loss(y, q)
        distorted = log_loss(y, np.clip(q + 0.2, 0, 1))
        assert honest < distorted


class TestPrecisionRecallF1:
    def test_hand_computed(self):
        y_true = np.array([1, 1, 0, 0, 1], dtype=float)
        y_pred = np.array([1, 0, 0, 1, 1], dtype=float)
        precision, recall, f1 = precision_recall_f1(y_true, y_pred)
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(2 / 3)
        assert f1 == pytest.approx(2 / 3)

    def test_no_positive_predictions(self):
        precision, recall, f1 = precision_recall_f1(
            [1.0, 0.0], [0.0, 0.0]
        )
        assert precision == 0.0
        assert recall == 0.0
        assert f1 == 0.0

    def test_perfect(self):
        y = np.array([1, 0, 1], dtype=float)
        assert precision_recall_f1(y, y) == (1.0, 1.0, 1.0)


class TestMacroAuc:
    def test_perfect_scores(self):
        scores = np.eye(3)[np.array([0, 1, 2, 0])]
        y = np.array([0.0, 1.0, 2.0, 0.0])
        assert macro_ovr_auc(y, scores) == pytest.approx(1.0)

    def test_random_scores_near_half(self, rng):
        y = rng.integers(0, 3, 600).astype(float)
        scores = rng.random((600, 3))
        assert macro_ovr_auc(y, scores) == pytest.approx(0.5, abs=0.08)

    def test_skips_absent_classes(self):
        scores = np.array([[0.9, 0.1, 0.0], [0.2, 0.8, 0.0], [0.7, 0.3, 0.0]])
        y = np.array([0.0, 1.0, 0.0])
        # Class 2 absent: macro over classes 0 and 1 only.
        value = macro_ovr_auc(y, scores, classes=[0.0, 1.0, 2.0])
        assert value == pytest.approx(1.0)

    def test_matches_multiclass_fit(self, rng):
        """End to end with the multiclass propagation output."""
        from repro.core.multiclass import solve_multiclass_hard
        from repro.datasets.toy import gaussian_blobs
        from repro.graph.similarity import full_kernel_graph

        centers = np.array([[0.0, 0.0], [6.0, 0.0], [3.0, 5.0]])
        x, y = gaussian_blobs(60, centers=centers, std=0.5, seed=0)
        labeled_idx = np.concatenate(
            [np.flatnonzero(y == c)[:4] for c in (0.0, 1.0, 2.0)]
        )
        unlabeled_idx = np.setdiff1d(np.arange(60), labeled_idx)
        order = np.concatenate([labeled_idx, unlabeled_idx])
        graph = full_kernel_graph(x[order], bandwidth=1.0)
        fit = solve_multiclass_hard(graph.weights, y[labeled_idx])
        value = macro_ovr_auc(y[unlabeled_idx], fit.scores, classes=fit.classes)
        assert value > 0.95

    def test_validation(self):
        with pytest.raises(DataValidationError):
            macro_ovr_auc([0.0, 1.0], np.ones((3, 2)))
        with pytest.raises(DataValidationError):
            macro_ovr_auc([0.0, 1.0], np.ones((2, 3)), classes=[0.0, 1.0])
        with pytest.raises(DataValidationError, match="undefined"):
            macro_ovr_auc([0.0, 0.0], np.ones((2, 1)), classes=[0.0])
