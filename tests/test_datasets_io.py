"""Tests for the transductive-problem IO helpers."""

import numpy as np
import pytest

from repro.datasets.io import (
    TransductiveProblem,
    load_transductive_csv,
    load_transductive_npz,
    save_transductive_npz,
)
from repro.exceptions import DataValidationError


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text(
        "f1,f2,label\n"
        "0.1,0.2,1\n"
        "0.3,0.4,\n"
        "0.5,0.6,0\n"
        "0.7,0.8,?\n"
        "0.9,1.0,1\n"
    )
    return path


class TestCsvLoading:
    def test_splits_labeled_and_unlabeled(self, csv_file):
        problem = load_transductive_csv(csv_file, label_column="label")
        assert problem.n_labeled == 3
        assert problem.n_unlabeled == 2
        np.testing.assert_array_equal(problem.y_labeled, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(
            problem.x_unlabeled, [[0.3, 0.4], [0.7, 0.8]]
        )
        assert problem.feature_names == ("f1", "f2")

    def test_label_column_position_irrelevant(self, tmp_path):
        path = tmp_path / "mid.csv"
        path.write_text("a,label,b\n1,5,2\n3,,4\n5,6,6\n")
        problem = load_transductive_csv(path, label_column="label")
        np.testing.assert_allclose(problem.x_labeled, [[1.0, 2.0], [5.0, 6.0]])
        np.testing.assert_array_equal(problem.y_labeled, [5.0, 6.0])
        np.testing.assert_allclose(problem.x_unlabeled, [[3.0, 4.0]])

    def test_x_all_stacks_labeled_first(self, csv_file):
        problem = load_transductive_csv(csv_file, label_column="label")
        assert problem.x_all.shape == (5, 2)
        np.testing.assert_allclose(problem.x_all[:3], problem.x_labeled)

    def test_custom_missing_markers(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("f,label\n1,0\n2,MISSING\n3,1\n")
        problem = load_transductive_csv(
            path, label_column="label", missing_markers=("MISSING",)
        )
        assert problem.n_unlabeled == 1

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataValidationError, match="no such file"):
            load_transductive_csv(tmp_path / "nope.csv", label_column="y")

    def test_unknown_label_column(self, csv_file):
        with pytest.raises(DataValidationError, match="label column"):
            load_transductive_csv(csv_file, label_column="target")

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,label\n1,0\n2\n")
        with pytest.raises(DataValidationError, match="expected 2 cells"):
            load_transductive_csv(path, label_column="label")

    def test_non_numeric_feature_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,label\nxyz,0\n1,\n")
        with pytest.raises(DataValidationError, match="non-numeric feature"):
            load_transductive_csv(path, label_column="label")

    def test_non_numeric_label_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,label\n1,yes\n2,\n")
        with pytest.raises(DataValidationError, match="non-numeric label"):
            load_transductive_csv(path, label_column="label")

    def test_all_labeled_rejected(self, tmp_path):
        path = tmp_path / "full.csv"
        path.write_text("a,label\n1,0\n2,1\n")
        with pytest.raises(DataValidationError, match="no unlabeled rows"):
            load_transductive_csv(path, label_column="label")

    def test_none_labeled_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,label\n1,\n2,\n")
        with pytest.raises(DataValidationError, match="no labeled rows"):
            load_transductive_csv(path, label_column="label")


class TestNpzRoundtrip:
    def test_roundtrip(self, tmp_path, rng):
        problem = TransductiveProblem(
            x_labeled=rng.normal(size=(5, 3)),
            y_labeled=rng.normal(size=5),
            x_unlabeled=rng.normal(size=(4, 3)),
            y_unlabeled=rng.normal(size=4),
        )
        path = save_transductive_npz(tmp_path / "sub" / "p.npz", problem)
        loaded = load_transductive_npz(path)
        np.testing.assert_array_equal(loaded.x_labeled, problem.x_labeled)
        np.testing.assert_array_equal(loaded.y_labeled, problem.y_labeled)
        np.testing.assert_array_equal(loaded.x_unlabeled, problem.x_unlabeled)
        np.testing.assert_array_equal(loaded.y_unlabeled, problem.y_unlabeled)

    def test_roundtrip_without_eval_labels(self, tmp_path, rng):
        problem = TransductiveProblem(
            x_labeled=rng.normal(size=(3, 2)),
            y_labeled=rng.normal(size=3),
            x_unlabeled=rng.normal(size=(2, 2)),
        )
        path = save_transductive_npz(tmp_path / "p.npz", problem)
        loaded = load_transductive_npz(path)
        assert loaded.y_unlabeled is None

    def test_missing_arrays_rejected(self, tmp_path, rng):
        path = tmp_path / "bad.npz"
        np.savez(path, x_labeled=rng.normal(size=(3, 2)))
        with pytest.raises(DataValidationError, match="missing required"):
            load_transductive_npz(path)

    def test_dimension_mismatch_rejected(self, tmp_path, rng):
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            x_labeled=rng.normal(size=(3, 2)),
            y_labeled=rng.normal(size=3),
            x_unlabeled=rng.normal(size=(2, 5)),
        )
        with pytest.raises(DataValidationError, match="columns"):
            load_transductive_npz(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataValidationError, match="no such file"):
            load_transductive_npz(tmp_path / "nope.npz")

    def test_pipeline_from_loaded_problem(self, tmp_path, rng):
        """End to end: save -> load -> fit the hard criterion."""
        from repro.core.estimators import HardLabelPropagation

        problem = TransductiveProblem(
            x_labeled=rng.normal(size=(20, 2)),
            y_labeled=rng.integers(0, 2, 20).astype(float),
            x_unlabeled=rng.normal(size=(8, 2)),
        )
        path = save_transductive_npz(tmp_path / "p.npz", problem)
        loaded = load_transductive_npz(path)
        model = HardLabelPropagation(bandwidth=1.0)
        scores = model.fit_predict(
            loaded.x_labeled, loaded.y_labeled, loaded.x_unlabeled
        )
        assert scores.shape == (8,)
