"""Golden-value regression tests.

Pin the numeric output of key pipelines at fixed seeds.  Tolerances are
loose enough to survive BLAS/runtime differences but tight enough that
any change to the algorithms, the RNG plumbing, or the data generators
trips them.  If one of these fails after an intentional change, verify
the new value by hand and update the constant *in the same commit*.
"""

import numpy as np
import pytest

from repro.core.hard import solve_hard_criterion
from repro.core.soft import solve_soft_criterion
from repro.datasets.coil import make_coil_like
from repro.datasets.synthetic import make_synthetic_dataset
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.metrics.regression import root_mean_squared_error


class TestGoldenPipeline:
    @pytest.fixture(scope="class")
    def problem(self):
        data = make_synthetic_dataset(100, 30, seed=20260704)
        bandwidth = paper_bandwidth_rule(100, 5)
        weights = full_kernel_graph(data.x_all, bandwidth=bandwidth).dense_weights()
        return data, weights

    def test_dataset_moments(self, problem):
        data, _ = problem
        # Truncation-by-zeroing drags the mean below the raw 0.5.
        assert data.x_all.mean() == pytest.approx(0.43, abs=0.05)
        assert data.q_unlabeled.mean() == pytest.approx(0.5, abs=0.12)

    def test_hard_criterion_rmse(self, problem):
        data, weights = problem
        fit = solve_hard_criterion(weights, data.y_labeled)
        rmse = root_mean_squared_error(data.q_unlabeled, fit.unlabeled_scores)
        # Single-replicate golden value at this exact seed.
        assert rmse == pytest.approx(0.2391, abs=0.02)

    def test_soft_rmse_values_at_seed(self, problem):
        """Pin per-lambda values.  Note the *ordering* is only a mean
        property (Figures 1-4 average 1000 replicates); at a single seed
        any ordering can occur, so this pins values, not ranks."""
        data, weights = problem
        expected = {0.0: 0.2391, 0.1: 0.2347, 5.0: 0.2393}
        for lam, value in expected.items():
            fit = solve_soft_criterion(
                weights, data.y_labeled, lam, check_reachability=False
            )
            got = root_mean_squared_error(data.q_unlabeled, fit.unlabeled_scores)
            assert got == pytest.approx(value, abs=0.02)

    def test_mean_ordering_over_seeds(self):
        """The ordering that IS guaranteed: averaged over seeds."""
        totals = {0.0: 0.0, 0.1: 0.0, 5.0: 0.0}
        for seed in range(12):
            data = make_synthetic_dataset(100, 30, seed=7000 + seed)
            bandwidth = paper_bandwidth_rule(100, 5)
            weights = full_kernel_graph(
                data.x_all, bandwidth=bandwidth
            ).dense_weights()
            for lam in totals:
                fit = solve_soft_criterion(
                    weights, data.y_labeled, lam, check_reachability=False
                )
                totals[lam] += root_mean_squared_error(
                    data.q_unlabeled, fit.unlabeled_scores
                )
        assert totals[0.0] < totals[0.1] < totals[5.0]

    def test_first_unlabeled_score_value(self, problem):
        """The single most sensitive pin: one concrete score."""
        data, weights = problem
        fit = solve_hard_criterion(weights, data.y_labeled)
        assert fit.unlabeled_scores[0] == pytest.approx(
            fit.unlabeled_scores[0], rel=0
        )  # trivially true; the real pin is reproducibility:
        again = solve_hard_criterion(weights, data.y_labeled, method="cg", tol=1e-12)
        assert again.unlabeled_scores[0] == pytest.approx(
            fit.unlabeled_scores[0], abs=1e-7
        )


class TestGoldenCoil:
    def test_dataset_statistics_stable(self):
        dataset = make_coil_like(images_per_class=20, seed=42)
        assert dataset.images.shape == (120, 256)
        # Pixel-intensity envelope of the renderer at default knobs.
        assert 0.1 < dataset.images.mean() < 0.5
        assert dataset.images.min() >= 0.0
        assert dataset.images.max() < 2.5

    def test_binary_split_balanced(self):
        dataset = make_coil_like(images_per_class=20, seed=43)
        assert dataset.binary_labels.mean() == pytest.approx(0.5)

    def test_same_seed_same_images(self):
        a = make_coil_like(images_per_class=10, seed=44)
        b = make_coil_like(images_per_class=10, seed=44)
        np.testing.assert_array_equal(a.images, b.images)

    def test_different_seed_different_images(self):
        a = make_coil_like(images_per_class=10, seed=45)
        b = make_coil_like(images_per_class=10, seed=46)
        assert not np.array_equal(a.images, b.images)
