"""Tests for the graph-coarsening multigrid preconditioner.

The hypothesis suite pins the structural invariants the V-cycle relies
on: every matching yields a valid aggregation operator (one unit entry
per row, no empty aggregates, at most two vertices per aggregate), the
Galerkin triple product ``PᵀAP`` of an SPD system is SPD, and the
coarse Laplacian identity ``PᵀL(W)P = L(PᵀWP)`` holds exactly.  The
performance-shaped property — multigrid-preconditioned CG reaches a
residual no worse than unpreconditioned CG on the same iteration
budget — is what justifies shipping the backend at all.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.datasets.synthetic import make_synthetic_dataset
from repro.exceptions import (
    ConfigurationError,
    ConvergenceError,
    DataValidationError,
)
from repro.graph.laplacian import laplacian
from repro.graph.similarity import knn_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.linalg.advanced import preconditioned_conjugate_gradient
from repro.linalg.coarsen import (
    CoarseningHierarchy,
    MatrixFreeMultigridPreconditioner,
    MultigridPreconditioner,
    aggregation_operator,
    build_hierarchy,
    build_matrix_free_hierarchy,
    coarsen_weights,
    graph_from_system,
    heavy_edge_matching,
    solve_multigrid,
)
from repro.linalg.solvers import solve_spd
from repro.linalg.workspace import SolveWorkspace


def _random_graph(n, seed, k=6):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    bandwidth = paper_bandwidth_rule(n, 5)
    return knn_graph(x, k=min(k, n - 1), bandwidth=bandwidth).weights


def _soft_system(weights, lam, n_labeled):
    n = weights.shape[0]
    mask = np.zeros(n)
    mask[:n_labeled] = 1.0
    return (sparse.diags(mask) + lam * laplacian(weights)).tocsr()


class TestHeavyEdgeMatching:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=80),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_matching_is_a_valid_aggregation(self, n, seed):
        weights = _random_graph(n, seed)
        labels = heavy_edge_matching(weights)
        assert labels.shape == (n,)
        assert labels.min() >= 0
        counts = np.bincount(labels)
        # no empty aggregates, and pair matching caps aggregates at 2
        assert counts.min() >= 1
        assert counts.max() <= 2
        p = aggregation_operator(labels)
        assert p.shape == (n, labels.max() + 1)
        # exactly one unit entry per row
        assert np.array_equal(np.diff(p.indptr), np.ones(n, dtype=p.indptr.dtype))
        np.testing.assert_array_equal(p.data, np.ones(n))

    def test_matching_is_deterministic(self):
        weights = _random_graph(50, 3)
        a = heavy_edge_matching(weights)
        b = heavy_edge_matching(weights)
        np.testing.assert_array_equal(a, b)

    def test_rejects_non_square(self):
        with pytest.raises(DataValidationError, match="square"):
            heavy_edge_matching(np.ones((3, 4)))


class TestGalerkinIdentities:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=60),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_coarse_laplacian_identity(self, n, seed):
        """``PᵀL(W)P == L(PᵀWP)`` — the identity that makes the
        hierarchy λ-independent."""
        weights = _random_graph(n, seed)
        p = aggregation_operator(heavy_edge_matching(weights))
        lap_then_coarsen = (p.T @ laplacian(weights) @ p).toarray()
        coarsen_then_lap = laplacian(coarsen_weights(weights, p)).toarray()
        np.testing.assert_allclose(
            lap_then_coarsen, coarsen_then_lap, atol=1e-10
        )

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=60),
        seed=st.integers(min_value=0, max_value=2**16),
        lam=st.floats(min_value=1e-3, max_value=10.0),
    )
    def test_triple_product_preserves_spd(self, n, seed, lam):
        weights = _random_graph(n, seed)
        system = _soft_system(weights, lam, max(1, n // 3))
        p = aggregation_operator(heavy_edge_matching(weights))
        coarse = (p.T @ system @ p).toarray()
        np.testing.assert_allclose(coarse, coarse.T, atol=1e-12)
        eigenvalues = np.linalg.eigvalsh(coarse)
        assert eigenvalues.min() > -1e-10

    def test_graph_from_system_recovers_weights(self):
        weights = _random_graph(40, 11)
        lam = 0.7
        system = _soft_system(weights, lam, 10)
        recovered = graph_from_system(system)
        expected = (lam * weights).tocsr()
        expected.setdiag(0.0)
        expected.eliminate_zeros()
        np.testing.assert_allclose(
            recovered.toarray(), expected.toarray(), atol=1e-12
        )


class TestHierarchy:
    def test_sizes_shrink_monotonically(self):
        weights = _random_graph(200, 5)
        hierarchy = build_hierarchy(weights, min_coarse_size=8)
        sizes = hierarchy.sizes
        assert sizes[0] == 200
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
        assert len(hierarchy.levels) >= 2

    def test_small_graph_yields_empty_hierarchy(self):
        weights = _random_graph(20, 1)
        hierarchy = build_hierarchy(weights, min_coarse_size=1024)
        assert hierarchy.levels == ()
        assert hierarchy.sizes == (20,)

    def test_coarsen_diagonal_aggregates_mask(self):
        weights = _random_graph(120, 2)
        hierarchy = build_hierarchy(weights, min_coarse_size=8)
        mask = np.zeros(120)
        mask[:30] = 1.0
        diagonals = hierarchy.coarsen_diagonal(mask)
        assert len(diagonals) == len(hierarchy.levels)
        # aggregation is a partition: total labeled mass is conserved
        for diag in diagonals:
            assert diag.sum() == pytest.approx(30.0)
        with pytest.raises(DataValidationError, match="length"):
            hierarchy.coarsen_diagonal(np.ones(7))

    def test_invalid_config_rejected(self):
        weights = _random_graph(30, 0)
        with pytest.raises(ConfigurationError, match="min_coarse_size"):
            build_hierarchy(weights, min_coarse_size=0)
        with pytest.raises(ConfigurationError, match="max_levels"):
            build_hierarchy(weights, max_levels=-1)


class TestMultigridPreconditioner:
    def test_preconditioner_is_symmetric(self):
        weights = _random_graph(150, 7)
        system = _soft_system(weights, 1.5, 40)
        precond = MultigridPreconditioner.from_matrix(
            system, min_coarse_size=16
        )
        rng = np.random.default_rng(0)
        u, v = rng.normal(size=(2, 150))
        # <Mu, v> == <u, Mv>: required for a valid CG preconditioner
        assert np.dot(precond(u), v) == pytest.approx(
            np.dot(u, precond(v)), rel=1e-8
        )

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        lam=st.floats(min_value=0.1, max_value=50.0),
    )
    def test_mg_pcg_beats_plain_cg_at_equal_budget(self, seed, lam):
        """Same iteration budget, multigrid reaches a residual at least
        as good (with slack) as unpreconditioned CG."""
        weights = _random_graph(300, seed)
        system = _soft_system(weights, lam, 75)
        rng = np.random.default_rng(seed)
        rhs = rng.normal(size=300)
        budget = 8

        def final_residual(preconditioner):
            try:
                result = preconditioned_conjugate_gradient(
                    system,
                    rhs,
                    preconditioner=preconditioner,
                    tol=1e-14,
                    max_iter=budget,
                )
                return result.final_residual
            except ConvergenceError as exc:
                return exc.residual

        mg = MultigridPreconditioner.from_matrix(system, min_coarse_size=16)
        assert final_residual(mg) <= 1.05 * final_residual(None) + 1e-12

    def test_validates_level_shapes_and_params(self):
        weights = _random_graph(40, 4)
        system = _soft_system(weights, 1.0, 10)
        with pytest.raises(ConfigurationError, match="at least one"):
            MultigridPreconditioner([], [])
        with pytest.raises(ConfigurationError, match="prolongations"):
            MultigridPreconditioner([system, system], [])
        with pytest.raises(ConfigurationError, match="omega"):
            MultigridPreconditioner.from_matrix(system, omega=1.5)
        with pytest.raises(ConfigurationError, match="n_smooth"):
            MultigridPreconditioner.from_matrix(system, n_smooth=0)

    def test_rejects_non_positive_diagonal(self):
        bad = sparse.diags([0.0, 1.0, 1.0, 1.0]).tocsr()
        p = aggregation_operator(np.array([0, 0, 1, 1]))
        with pytest.raises(DataValidationError, match="diagonal"):
            MultigridPreconditioner([bad, (p.T @ bad @ p).tocsr()], [p])


class TestSolveMultigrid:
    def test_matches_direct_solve(self):
        weights = _random_graph(250, 9)
        system = _soft_system(weights, 2.0, 60)
        rng = np.random.default_rng(1)
        rhs = rng.normal(size=250)
        result = solve_multigrid(system, rhs, min_coarse_size=16)
        expected = solve_spd(system, rhs, method="direct")
        np.testing.assert_allclose(result.x, expected, atol=1e-7)
        assert result.converged

    def test_solve_spd_method_multigrid(self):
        weights = _random_graph(180, 10)
        system = _soft_system(weights, 0.5, 45)
        rhs = np.ones(180)
        x, info = solve_spd(
            system, rhs, method="multigrid", return_info=True
        )
        np.testing.assert_allclose(
            x, solve_spd(system, rhs, method="direct"), atol=1e-7
        )
        assert info.method == "multigrid"
        assert info.iterations > 0
        # warm start from the exact answer converges immediately
        _, warm_info = solve_spd(
            system, rhs, method="multigrid", x0=x, return_info=True
        )
        assert warm_info.warm_started
        assert warm_info.iterations <= info.iterations


class TestWorkspaceMultigridBackend:
    @pytest.fixture(scope="class")
    def problem(self):
        data = make_synthetic_dataset(60, 240, seed=13)
        bandwidth = paper_bandwidth_rule(60, 5)
        graph = knn_graph(data.x_all, k=8, bandwidth=bandwidth)
        return data, graph

    def test_parity_with_exact_backend_across_lambda_sweep(self, problem):
        data, graph = problem
        mg = SolveWorkspace(graph.weights, backend="multigrid")
        # the workspace floor (512) would leave this 300-vertex fixture
        # with an empty hierarchy; inject a deep one so the sweep
        # exercises real V-cycles, not the degenerate exact-solve case
        mg._hierarchy = build_hierarchy(graph.weights, min_coarse_size=32)
        mg._counters["coarsen_builds"] += 1
        exact = SolveWorkspace(graph.weights, backend="exact")
        for lam in (0.01, 0.1, 1.0, 10.0):
            a = mg.solve_soft(data.y_labeled, lam)
            b = exact.solve_soft(data.y_labeled, lam)
            np.testing.assert_allclose(a.scores, b.scores, atol=1e-6)
            assert a.solve_info.method == "multigrid_pcg"
            assert a.details["n_levels"] >= 3
        stats = mg.stats()
        assert stats.coarsen_builds == 1  # hierarchy shared across the sweep
        assert stats.multigrid_solves == 4
        assert stats.warm_starts == 3
        assert stats.pcg_iterations > 0

    def test_convergence_failure_falls_back_to_exact(
        self, problem, monkeypatch
    ):
        import repro.linalg.workspace as workspace_module

        data, graph = problem

        def stalled(*args, **kwargs):
            raise ConvergenceError("stalled V-cycle", iterations=1, residual=1.0)

        monkeypatch.setattr(
            workspace_module, "preconditioned_conjugate_gradient", stalled
        )
        ws = SolveWorkspace(graph.weights, backend="multigrid")
        fit = ws.solve_soft(data.y_labeled, 5.0)
        assert fit.details["fallback"] == "exact"
        exact = SolveWorkspace(graph.weights, backend="exact")
        np.testing.assert_allclose(
            fit.scores, exact.solve_soft(data.y_labeled, 5.0).scores, atol=1e-8
        )
        assert ws.stats().reanchors == 1

    def test_invalidate_clears_hierarchy(self, problem):
        data, graph = problem
        ws = SolveWorkspace(graph.weights, backend="multigrid")
        ws.solve_soft(data.y_labeled, 0.5)
        ws.invalidate()
        ws.solve_soft(data.y_labeled, 0.5)
        assert ws.stats().coarsen_builds == 2

    def test_empty_hierarchy_degenerates_to_exact_solve(self):
        # below min_coarse_size the V-cycle is a single exact solve
        weights = _random_graph(30, 21)
        hierarchy = CoarseningHierarchy(n_vertices=30)
        system = _soft_system(weights, 1.0, 10)
        precond = MultigridPreconditioner.from_matrix(
            system, hierarchy=hierarchy
        )
        assert precond.n_levels == 1
        rng = np.random.default_rng(2)
        rhs = rng.normal(size=30)
        np.testing.assert_allclose(
            precond(rhs), solve_spd(system, rhs, method="direct"), atol=1e-8
        )


def _mask_diagonals(hierarchy, n_labeled):
    indicator = np.zeros(hierarchy.sizes[0] if hasattr(hierarchy, "sizes") else 0)
    indicator[:n_labeled] = 1.0
    return hierarchy.coarsen_diagonal(indicator)


class TestMatrixFreeHierarchy:
    """The matrix-free hierarchy must be the *same coarsening* as the
    assembled one — identical aggregates, sizes and level nnz — while
    retaining O(N) maps instead of O(Σ nnz_level) matrices."""

    def test_same_coarsening_as_assembled(self):
        weights = _random_graph(400, 3)
        assembled = build_hierarchy(weights, min_coarse_size=32)
        mf = build_matrix_free_hierarchy(weights, min_coarse_size=32)
        assert mf.sizes == assembled.sizes
        assert mf.n_levels == len(assembled.levels) + 1
        for labels, level in zip(mf.labels, assembled.levels):
            # the matching defines the prolongation: P[i, labels[i]] = 1
            np.testing.assert_array_equal(labels, level.prolongation.indices)
        assert mf.level_nnz == tuple(
            level.weights.nnz for level in assembled.levels
        )
        for lap_diag, level in zip(mf.lap_diagonals, assembled.levels):
            np.testing.assert_allclose(
                lap_diag, level.laplacian.diagonal(), atol=1e-12
            )
        np.testing.assert_allclose(
            (mf.coarsest_weights - assembled.levels[-1].weights).toarray(),
            0.0,
            atol=1e-12,
        )

    def test_coarsen_diagonal_matches_assembled(self):
        weights = _random_graph(300, 5)
        assembled = build_hierarchy(weights, min_coarse_size=32)
        mf = build_matrix_free_hierarchy(weights, min_coarse_size=32)
        indicator = np.zeros(300)
        indicator[:80] = 1.0
        for a, b in zip(
            mf.coarsen_diagonal(indicator),
            assembled.coarsen_diagonal(indicator),
        ):
            np.testing.assert_allclose(a, b, atol=1e-12)
        with pytest.raises(DataValidationError, match="length"):
            mf.coarsen_diagonal(np.ones(7))

    def test_retained_below_assembled_estimate(self):
        weights = _random_graph(600, 8)
        mf = build_matrix_free_hierarchy(weights, min_coarse_size=32)
        assert 0 < mf.retained_bytes()
        assert mf.retained_bytes() < mf.assembled_bytes_estimate()

    def test_shared_fine_laplacian_is_not_recomputed(self):
        weights = _random_graph(200, 9)
        lap = laplacian(weights).tocsr()
        mf = build_matrix_free_hierarchy(
            weights, min_coarse_size=32, fine_laplacian=lap
        )
        assert mf.fine_laplacian is lap
        with pytest.raises(DataValidationError, match="fine_laplacian"):
            build_matrix_free_hierarchy(
                weights, fine_laplacian=sparse.eye(5, format="csr")
            )

    def test_small_graph_keeps_fine_level_only(self):
        weights = _random_graph(30, 2)
        mf = build_matrix_free_hierarchy(weights, min_coarse_size=64)
        assert mf.labels == ()
        assert mf.n_levels == 1
        assert mf.coarsest_laplacian is mf.fine_laplacian


class TestMatrixFreeMultigridPreconditioner:
    def _setup(self, n=350, seed=17, lam=1.5, n_labeled=90, min_coarse=32):
        weights = _random_graph(n, seed)
        system = _soft_system(weights, lam, n_labeled)
        mf = build_matrix_free_hierarchy(weights, min_coarse_size=min_coarse)
        indicator = np.zeros(n)
        indicator[:n_labeled] = 1.0
        masks = mf.coarsen_diagonal(indicator)
        return weights, system, mf, masks, lam, n_labeled

    def test_matches_assembled_preconditioner(self):
        weights, system, mf, masks, lam, n_labeled = self._setup()
        assembled = build_hierarchy(weights, min_coarse_size=32)
        systems = [system]
        for level, mask in zip(
            assembled.levels, _mask_diagonals(assembled, n_labeled)
        ):
            systems.append(
                (lam * level.laplacian + sparse.diags(mask, format="csr")).tocsr()
            )
        reference = MultigridPreconditioner(
            systems, [level.prolongation for level in assembled.levels]
        )
        precond = MatrixFreeMultigridPreconditioner(system, mf, lam, masks)
        assert precond.n_levels == reference.n_levels
        rng = np.random.default_rng(4)
        for residual in rng.normal(size=(3, weights.shape[0])):
            np.testing.assert_allclose(
                precond(residual), reference(residual), rtol=1e-10, atol=1e-12
            )

    def test_preconditioner_is_symmetric(self):
        _, system, mf, masks, lam, _ = self._setup(seed=23)
        precond = MatrixFreeMultigridPreconditioner(system, mf, lam, masks)
        rng = np.random.default_rng(0)
        u, v = rng.normal(size=(2, 350))
        assert np.dot(precond(u), v) == pytest.approx(
            np.dot(u, precond(v)), rel=1e-8
        )

    def test_float32_policy_stays_close_and_casts_back(self):
        _, system, mf, masks, lam, _ = self._setup(seed=29)
        exact = MatrixFreeMultigridPreconditioner(system, mf, lam, masks)
        mixed = MatrixFreeMultigridPreconditioner(
            system, mf, lam, masks, dtype_policy="float32"
        )
        rng = np.random.default_rng(5)
        residual = rng.normal(size=350)
        out = mixed(residual)
        assert out.dtype == np.float64
        reference = exact(residual)
        scale = float(np.linalg.norm(reference))
        assert np.linalg.norm(out - reference) < 1e-5 * scale

    def test_validation(self):
        _, system, mf, masks, lam, _ = self._setup(seed=31)
        with pytest.raises(ConfigurationError, match="omega"):
            MatrixFreeMultigridPreconditioner(system, mf, lam, masks, omega=2.0)
        with pytest.raises(ConfigurationError, match="n_smooth"):
            MatrixFreeMultigridPreconditioner(
                system, mf, lam, masks, n_smooth=0
            )
        with pytest.raises(ConfigurationError, match="mask diagonals"):
            MatrixFreeMultigridPreconditioner(system, mf, lam, masks[:-1])
        with pytest.raises(ConfigurationError, match="dtype_policy"):
            MatrixFreeMultigridPreconditioner(
                system, mf, lam, masks, dtype_policy="float16"
            )

    def test_degenerate_hierarchy_is_exact_solve(self):
        weights = _random_graph(30, 33)
        system = _soft_system(weights, 1.0, 10)
        mf = build_matrix_free_hierarchy(weights, min_coarse_size=64)
        precond = MatrixFreeMultigridPreconditioner(system, mf, 1.0, [])
        assert precond.n_levels == 1
        rng = np.random.default_rng(2)
        rhs = rng.normal(size=30)
        np.testing.assert_allclose(
            precond(rhs), solve_spd(system, rhs, method="direct"), atol=1e-8
        )


class TestWorkspaceMatrixFree:
    """hierarchy_mode / dtype_policy plumbing through SolveWorkspace."""

    @pytest.fixture(scope="class")
    def problem(self):
        data = make_synthetic_dataset(60, 240, seed=13)
        bandwidth = paper_bandwidth_rule(60, 5)
        graph = knn_graph(data.x_all, k=8, bandwidth=bandwidth)
        return data, graph

    def _matrix_free_workspace(self, graph, **kwargs):
        ws = SolveWorkspace(
            graph.weights,
            backend="multigrid",
            hierarchy_mode="matrix_free",
            **kwargs,
        )
        # the workspace floor (512) would leave this 300-vertex fixture
        # with an empty hierarchy; inject a deep one so the sweep
        # exercises real V-cycles
        ws._hierarchy = build_matrix_free_hierarchy(
            graph.weights, min_coarse_size=32
        )
        ws._counters["coarsen_builds"] += 1
        return ws

    @pytest.mark.parametrize("dtype_policy", ["float64", "float32"])
    def test_parity_with_exact_across_lambda_sweep(self, problem, dtype_policy):
        data, graph = problem
        ws = self._matrix_free_workspace(graph, dtype_policy=dtype_policy)
        exact = SolveWorkspace(graph.weights, backend="exact")
        for lam in (0.01, 0.1, 1.0, 10.0):
            a = ws.solve_soft(data.y_labeled, lam)
            b = exact.solve_soft(data.y_labeled, lam)
            np.testing.assert_allclose(a.scores, b.scores, atol=1e-6)
            assert a.solve_info.method == "multigrid_pcg"
        stats = ws.stats()
        assert stats.hierarchy_mode == "matrix_free"
        assert stats.dtype_policy == dtype_policy
        assert stats.multigrid_solves == 4

    def test_float32_matches_float64_to_documented_tier(self, problem):
        data, graph = problem
        f64 = self._matrix_free_workspace(graph, dtype_policy="float64")
        f32 = self._matrix_free_workspace(graph, dtype_policy="float32")
        for lam in (0.05, 5.0):
            a = f64.solve_soft(data.y_labeled, lam).scores
            b = f32.solve_soft(data.y_labeled, lam).scores
            rms = float(np.sqrt(np.mean((a - b) ** 2)))
            assert rms < 1e-9  # the tier documented in docs/SCALING.md

    def test_auto_mode_resolves_by_size(self, problem, monkeypatch):
        import repro.linalg.workspace as workspace_module

        _, graph = problem
        small = SolveWorkspace(graph.weights, backend="multigrid")
        assert small.stats().hierarchy_mode == "assembled"
        monkeypatch.setattr(workspace_module, "MATRIX_FREE_MIN_VERTICES", 100)
        large = SolveWorkspace(graph.weights, backend="multigrid")
        assert large.stats().hierarchy_mode == "matrix_free"
        # dense graphs never auto-select the matrix-free representation
        dense = SolveWorkspace(
            np.asarray(graph.weights.todense()), backend="multigrid"
        )
        assert dense.stats().hierarchy_mode == "assembled"

    def test_requested_mode_wins_over_auto(self, problem):
        _, graph = problem
        ws = SolveWorkspace(
            graph.weights, backend="multigrid", hierarchy_mode="matrix_free"
        )
        assert ws.stats().hierarchy_mode == "matrix_free"
        hierarchy = ws.hierarchy()
        assert hierarchy.labels == ()  # 300 vertices < workspace floor

    def test_validation(self, problem):
        _, graph = problem
        with pytest.raises(ConfigurationError, match="hierarchy_mode"):
            SolveWorkspace(graph.weights, hierarchy_mode="bogus")
        with pytest.raises(ConfigurationError, match="dtype_policy"):
            SolveWorkspace(graph.weights, dtype_policy="float16")

    def test_assembled_dtype_policy_sweep_parity(self, problem):
        data, graph = problem
        ws = SolveWorkspace(
            graph.weights, backend="multigrid", dtype_policy="float32",
            hierarchy_mode="assembled",
        )
        ws._hierarchy = build_hierarchy(graph.weights, min_coarse_size=32)
        ws._counters["coarsen_builds"] += 1
        exact = SolveWorkspace(graph.weights, backend="exact")
        for lam in (0.1, 1.0):
            a = ws.solve_soft(data.y_labeled, lam)
            b = exact.solve_soft(data.y_labeled, lam)
            np.testing.assert_allclose(a.scores, b.scores, atol=1e-6)

    def test_invalidate_rebuilds_matrix_free_hierarchy(self, problem):
        data, graph = problem
        ws = SolveWorkspace(
            graph.weights, backend="multigrid", hierarchy_mode="matrix_free"
        )
        ws.solve_soft(data.y_labeled, 0.5)
        ws.invalidate()
        ws.solve_soft(data.y_labeled, 0.5)
        assert ws.stats().coarsen_builds == 2
