"""Integration tests: the paper's mathematical identities end to end.

Each test reproduces, at test-scale, a claim made in the paper's
Sections II-IV: the Eq. 4/5 closed forms, Propositions II.1/II.2, the
Section III toy example, the Nadaraya-Watson link, and the block-inverse
derivation that produces Eq. (4) from Eq. (3).
"""

import numpy as np
import pytest

from repro.core.hard import solve_hard_criterion
from repro.core.nadaraya_watson import nadaraya_watson_from_weights
from repro.core.soft import solve_soft_criterion
from repro.datasets.synthetic import make_synthetic_dataset
from repro.datasets.toy import constant_input_toy
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.linalg.block import BlockMatrix, block_inverse


@pytest.fixture(scope="module")
def problem():
    data = make_synthetic_dataset(120, 40, seed=2024)
    bandwidth = paper_bandwidth_rule(120, 5)
    weights = full_kernel_graph(data.x_all, bandwidth=bandwidth).dense_weights()
    return data, weights


class TestEquation4ViaBlockInverse:
    def test_soft_solution_from_paper_block_formula(self, problem):
        """Invert (V + lam L) with the paper's 2x2 block formula and check
        the resulting unlabeled scores equal the solver's Eq. (4) output."""
        data, weights = problem
        n = data.n_labeled
        lam = 0.25
        total = weights.shape[0]
        degrees = weights.sum(axis=1)
        system = lam * (np.diag(degrees) - weights)
        system[np.arange(n), np.arange(n)] += 1.0

        inverse = block_inverse(BlockMatrix.partition(system, n)).assemble()
        rhs = np.zeros(total)
        rhs[:n] = data.y_labeled
        expected = (inverse @ rhs)[n:]

        fit = solve_soft_criterion(weights, data.y_labeled, lam, method="schur")
        np.testing.assert_allclose(fit.unlabeled_scores, expected, atol=1e-8)


class TestNadarayaWatsonLink:
    def test_decomposition_of_hard_solution(self, problem):
        """f = NW - g + remainder, with the proof's exact terms."""
        data, weights = problem
        n = data.n_labeled
        degrees = weights.sum(axis=1)
        d22 = degrees[n:]
        w21 = weights[n:, :n]
        w22 = weights[n:, n:]

        hard = solve_hard_criterion(weights, data.y_labeled).unlabeled_scores
        nw = nadaraya_watson_from_weights(weights, data.y_labeled)
        # g = NW - first-order term.
        first_order = (w21 @ data.y_labeled) / d22
        g = nw - first_order
        # Remainder = S D22^{-1} W21 y with S = (I - D22^{-1}W22)^{-1} - I.
        iterated = w22 / d22[:, None]
        s_matrix = np.linalg.inv(np.eye(len(d22)) - iterated) - np.eye(len(d22))
        remainder = s_matrix @ first_order
        np.testing.assert_allclose(hard, nw - g + remainder, atol=1e-8)

    def test_hard_converges_to_nw_with_n(self):
        """The gap max|f - NW| shrinks as n grows (the proof's conclusion)."""
        gaps = []
        for n in (50, 200, 800):
            data = make_synthetic_dataset(n, 15, seed=99)
            bandwidth = paper_bandwidth_rule(n, 5)
            weights = full_kernel_graph(data.x_all, bandwidth=bandwidth).dense_weights()
            hard = solve_hard_criterion(weights, data.y_labeled).unlabeled_scores
            nw = nadaraya_watson_from_weights(weights, data.y_labeled)
            gaps.append(np.max(np.abs(hard - nw)))
        assert gaps[2] < gaps[0]


class TestToyExampleSectionIII:
    def test_full_closed_form(self):
        toy = constant_input_toy(12, 5, seed=5)
        weights = full_kernel_graph(toy.x_all, bandwidth=1.0).dense_weights()
        # All weights are exactly 1 for identical inputs under the RBF.
        np.testing.assert_allclose(weights, np.ones_like(weights))
        fit = solve_hard_criterion(weights, toy.y_labeled)
        np.testing.assert_allclose(
            fit.unlabeled_scores,
            np.full(5, toy.y_labeled.mean()),
            atol=1e-10,
        )
        np.testing.assert_array_equal(fit.labeled_scores, toy.y_labeled)

    def test_soft_criterion_also_sane_on_toy(self):
        """On the toy geometry every unlabeled soft score is also the
        labeled mean (by symmetry), for any lambda."""
        toy = constant_input_toy(8, 4, seed=6)
        weights = full_kernel_graph(toy.x_all, bandwidth=1.0).dense_weights()
        for lam in (0.1, 1.0, 10.0):
            fit = solve_soft_criterion(weights, toy.y_labeled, lam)
            np.testing.assert_allclose(
                fit.unlabeled_scores,
                np.full(4, fit.labeled_scores.mean()),
                atol=1e-8,
            )


class TestPropositionOrderings:
    def test_rmse_ordering_hard_beats_soft(self, problem):
        """On a fresh replicate set, mean RMSE is increasing in lambda —
        Figures 1-4's headline ordering."""
        from repro.metrics.regression import root_mean_squared_error

        lambdas = (0.0, 0.1, 5.0)
        totals = {lam: 0.0 for lam in lambdas}
        for seed in range(20):
            data = make_synthetic_dataset(100, 30, seed=seed)
            bandwidth = paper_bandwidth_rule(100, 5)
            weights = full_kernel_graph(data.x_all, bandwidth=bandwidth).dense_weights()
            for lam in lambdas:
                fit = solve_soft_criterion(
                    weights, data.y_labeled, lam, check_reachability=False
                )
                totals[lam] += root_mean_squared_error(
                    data.q_unlabeled, fit.unlabeled_scores
                )
        assert totals[0.0] < totals[0.1] < totals[5.0]

    def test_rmse_grows_with_m(self):
        """Figure 2's pattern: with n fixed, more unlabeled data hurts."""
        from repro.metrics.regression import root_mean_squared_error

        def mean_rmse(m):
            total = 0.0
            for seed in range(15):
                data = make_synthetic_dataset(100, m, seed=1000 + seed)
                bandwidth = paper_bandwidth_rule(100, 5)
                weights = full_kernel_graph(
                    data.x_all, bandwidth=bandwidth
                ).dense_weights()
                fit = solve_hard_criterion(
                    weights, data.y_labeled, check_reachability=False
                )
                total += root_mean_squared_error(
                    data.q_unlabeled, fit.unlabeled_scores
                )
            return total / 15

        assert mean_rmse(30) < mean_rmse(500)
