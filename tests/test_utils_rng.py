"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rngs, spawn_seeds


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_rng(1).random(5), as_rng(2).random(5))

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        a = as_rng(seq).random(3)
        b = as_rng(np.random.SeedSequence(7)).random(3)
        np.testing.assert_array_equal(a, b)


class TestSpawn:
    def test_spawn_count(self):
        assert len(spawn_rngs(0, 7)) == 7
        assert len(spawn_seeds(0, 3)) == 3

    def test_spawn_zero_is_empty(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_children_are_independent_streams(self):
        children = spawn_rngs(123, 3)
        draws = [c.random(4) for c in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_children_reproducible_from_master_seed(self):
        first = [c.random(4) for c in spawn_rngs(9, 2)]
        second = [c.random(4) for c in spawn_rngs(9, 2)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_spawn_from_generator_advances(self):
        gen = np.random.default_rng(5)
        first = spawn_rngs(gen, 1)[0].random(3)
        second = spawn_rngs(gen, 1)[0].random(3)
        assert not np.array_equal(first, second)
