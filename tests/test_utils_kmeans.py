"""Unit tests for the from-scratch k-means."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError
from repro.utils.kmeans import kmeans


class TestKMeans:
    def test_recovers_separated_clusters(self, rng):
        a = rng.normal(size=(40, 2))
        b = rng.normal(size=(40, 2)) + 10.0
        x = np.vstack([a, b])
        result = kmeans(x, 2, seed=0)
        # Centers near the true means, in some order.
        centers = result.centers[np.argsort(result.centers[:, 0])]
        np.testing.assert_allclose(centers[0], a.mean(axis=0), atol=0.5)
        np.testing.assert_allclose(centers[1], b.mean(axis=0), atol=0.5)

    def test_labels_partition_consistently(self, rng):
        x = rng.normal(size=(50, 3))
        result = kmeans(x, 4, seed=1)
        assert result.labels.shape == (50,)
        assert set(np.unique(result.labels)) <= set(range(4))
        # Every point is assigned to its nearest center.
        from repro.kernels.base import pairwise_sq_distances

        sq = pairwise_sq_distances(x, result.centers)
        np.testing.assert_array_equal(result.labels, np.argmin(sq, axis=1))

    def test_inertia_is_within_cluster_ss(self, rng):
        x = rng.normal(size=(30, 2))
        result = kmeans(x, 3, seed=2)
        expected = sum(
            float(np.sum((x[result.labels == j] - result.centers[j]) ** 2))
            for j in range(3)
        )
        assert result.inertia == pytest.approx(expected, rel=1e-9)

    def test_k_equals_n_zero_inertia(self, rng):
        x = rng.normal(size=(6, 2))
        result = kmeans(x, 6, seed=3)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_k1_center_is_mean(self, rng):
        x = rng.normal(size=(25, 3))
        result = kmeans(x, 1, seed=4)
        np.testing.assert_allclose(result.centers[0], x.mean(axis=0), atol=1e-10)

    def test_more_inits_never_hurt(self, rng):
        x = rng.normal(size=(60, 2))
        single = kmeans(x, 5, n_init=1, seed=5)
        multi = kmeans(x, 5, n_init=5, seed=5)
        assert multi.inertia <= single.inertia + 1e-9

    def test_reproducible(self, rng):
        x = rng.normal(size=(30, 2))
        a = kmeans(x, 3, seed=6)
        b = kmeans(x, 3, seed=6)
        np.testing.assert_array_equal(a.centers, b.centers)

    def test_duplicate_points_handled(self):
        x = np.zeros((10, 2))
        result = kmeans(x, 3, seed=7)
        assert result.inertia == pytest.approx(0.0)

    def test_validation(self, rng):
        x = rng.normal(size=(5, 2))
        with pytest.raises(ConfigurationError):
            kmeans(x, 0)
        with pytest.raises(DataValidationError):
            kmeans(x, 6)
        with pytest.raises(ConfigurationError):
            kmeans(x, 2, n_init=0)
