"""Unit tests for repro.graph.components."""

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import DataValidationError, DisconnectedGraphError
from repro.graph.components import (
    connected_components,
    is_connected,
    labeled_reachability,
    require_labeled_reachability,
)


class TestConnectedComponents:
    def test_single_component(self):
        w = np.array([[0.0, 1.0], [1.0, 0.0]])
        count, labels = connected_components(w)
        assert count == 1
        assert labels[0] == labels[1]

    def test_two_components(self, disconnected_weights):
        count, labels = connected_components(disconnected_weights)
        assert count == 2
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]

    def test_zero_weights_are_not_edges(self):
        w = np.zeros((3, 3))
        count, _ = connected_components(w)
        assert count == 3

    def test_sparse_input(self, disconnected_weights):
        count, _ = connected_components(sparse.csr_matrix(disconnected_weights))
        assert count == 2

    def test_sparse_stored_zero_not_an_edge(self):
        """An explicitly stored 0.0 entry must not create an edge."""
        data = np.array([1.0, 1.0, 0.0, 0.0])
        rows = np.array([0, 1, 0, 2])
        cols = np.array([1, 0, 2, 0])
        w = sparse.csr_matrix((data, (rows, cols)), shape=(3, 3))
        assert w.nnz == 4  # the zeros are explicitly stored
        count, _ = connected_components(w)
        assert count == 2

    def test_is_connected(self, disconnected_weights):
        assert not is_connected(disconnected_weights)
        assert is_connected(np.array([[0.0, 0.1], [0.1, 0.0]]))


class TestLabeledReachability:
    def test_ok_when_all_reach(self, tiny_weights):
        report = labeled_reachability(tiny_weights, n_labeled=2)
        assert report.ok
        assert report.orphan_vertices == ()

    def test_detects_orphans(self, disconnected_weights):
        report = labeled_reachability(disconnected_weights, n_labeled=2)
        assert not report.ok
        assert report.orphan_vertices == (3, 4)
        assert report.n_components == 2

    def test_all_labeled_is_ok(self, disconnected_weights):
        report = labeled_reachability(disconnected_weights, n_labeled=5)
        assert report.ok

    def test_no_labels_all_orphans(self, tiny_weights):
        report = labeled_reachability(tiny_weights, n_labeled=0)
        assert not report.ok
        assert len(report.orphan_vertices) == 4

    def test_invalid_n_labeled(self, tiny_weights):
        with pytest.raises(DataValidationError):
            labeled_reachability(tiny_weights, n_labeled=9)

    def test_require_raises_with_vertices(self, disconnected_weights):
        with pytest.raises(DisconnectedGraphError) as excinfo:
            require_labeled_reachability(disconnected_weights, n_labeled=2)
        assert excinfo.value.component_indices == (3, 4)
        assert "bandwidth" in str(excinfo.value)

    def test_require_passes_silently(self, tiny_weights):
        require_labeled_reachability(tiny_weights, n_labeled=2)
