"""SLO specs: parsing, evaluation semantics, and the CLI gate's exit codes.

The contract under test: ``repro obs slo`` exits 0 when every objective
is met, 1 on any breach (including an objective whose metric is absent
— an SLO you cannot observe is not being met), and 2 on configuration
errors (unreadable spec, unknown keys, no metrics source).  Satellite
6's regression lives here too: a corrupt ``--ledger`` file or a
no-matching-runs query is a one-line ``error:`` + exit 2, never a
traceback.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.exceptions import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    evaluate_slo,
    load_slo_spec,
    parse_toml_subset,
)


def serving_metrics(*, p99=0.02, errors=0, qps=900.0, drift=0.05) -> dict:
    reg = MetricsRegistry()
    reg.log_histogram("serving.request.latency_s").observe_many(
        np.full(100, p99 / 2.0)
    )
    reg.log_histogram("serving.request.latency_s").observe(p99)
    reg.counter("serving.request.outcome.ok").inc(100)
    if errors:
        reg.counter("serving.request.outcome.error").inc(errors)
    reg.gauge("serving.request.throughput_qps").set(qps)
    reg.gauge("serving.drift.flag_fraction").set(drift)
    return reg.snapshot()


class TestTomlSubsetParser:
    def test_sections_numbers_strings_bools(self):
        data = parse_toml_subset(
            "# header comment\n"
            "[latency]\n"
            'metric = "custom.lat"  # trailing comment\n'
            "p99_max_s = 0.25\n"
            "[drift]\n"
            "max_flag_fraction = 0.1\n"
        )
        assert data["latency"]["metric"] == "custom.lat"
        assert data["latency"]["p99_max_s"] == 0.25
        assert data["drift"]["max_flag_fraction"] == 0.1

    def test_key_outside_section_rejected(self):
        with pytest.raises(ConfigurationError, match="outside"):
            parse_toml_subset("p99_max_s = 1.0\n")

    def test_unterminated_string_rejected(self):
        with pytest.raises(ConfigurationError, match="unterminated"):
            parse_toml_subset('[latency]\nmetric = "oops\n')

    def test_non_scalar_value_rejected(self):
        with pytest.raises(ConfigurationError, match="not a number"):
            parse_toml_subset("[latency]\np99_max_s = [1, 2]\n")

    def test_matches_tomllib_on_real_spec(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")
        text = (
            "[latency]\n"
            "p50_max_s = 0.005\n"
            "p99_max_s = 0.25\n"
            "[errors]\n"
            "max_rate = 0.01\n"
            "[throughput]\n"
            "min_qps = 500.0\n"
        )
        assert parse_toml_subset(text) == tomllib.loads(text)


class TestSpecLoading:
    def test_unknown_section_rejected(self, tmp_path):
        spec = tmp_path / "s.toml"
        spec.write_text("[latencee]\np99_max_s = 1.0\n")
        with pytest.raises(ConfigurationError, match=r"unknown section"):
            load_slo_spec(spec)

    def test_unknown_key_rejected(self, tmp_path):
        spec = tmp_path / "s.toml"
        spec.write_text("[latency]\np42_max_s = 1.0\n")
        with pytest.raises(ConfigurationError, match=r"unknown key"):
            load_slo_spec(spec)

    def test_empty_spec_rejected(self, tmp_path):
        spec = tmp_path / "s.toml"
        spec.write_text("# nothing here\n")
        with pytest.raises(ConfigurationError, match="no objectives"):
            load_slo_spec(spec)

    def test_json_spec_loads(self, tmp_path):
        spec = tmp_path / "s.json"
        spec.write_text(json.dumps({"throughput": {"min_qps": 10.0}}))
        assert load_slo_spec(spec) == {"throughput": {"min_qps": 10.0}}

    def test_missing_file_is_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_slo_spec(tmp_path / "absent.toml")


class TestEvaluation:
    def test_all_objectives_met(self):
        spec = {
            "latency": {"p99_max_s": 1.0},
            "errors": {"max_rate": 0.05},
            "throughput": {"min_qps": 100.0},
            "drift": {"max_flag_fraction": 0.5},
        }
        report = evaluate_slo(spec, serving_metrics())
        assert not report.breached
        assert len(report.checks) == 4
        assert "SLO met" in report.render()

    def test_latency_breach(self):
        report = evaluate_slo(
            {"latency": {"p99_max_s": 1e-9}}, serving_metrics()
        )
        assert report.breached
        assert report.breaches[0].objective == "latency.p99"

    def test_absent_metric_is_a_breach(self):
        report = evaluate_slo({"throughput": {"min_qps": 1.0}}, {})
        assert report.breached
        assert report.breaches[0].observed is None
        assert "absent" in report.breaches[0].detail

    def test_missing_error_counter_with_traffic_means_zero_errors(self):
        report = evaluate_slo(
            {"errors": {"max_rate": 0.0}}, serving_metrics(errors=0)
        )
        assert not report.breached
        assert report.checks[0].observed == 0.0

    def test_no_outcomes_at_all_is_a_breach(self):
        report = evaluate_slo({"errors": {"max_rate": 1.0}}, {})
        assert report.breached

    def test_error_rate_computed(self):
        report = evaluate_slo(
            {"errors": {"max_rate": 0.01}}, serving_metrics(errors=10)
        )
        assert report.breached
        assert report.checks[0].observed == pytest.approx(10 / 110)

    def test_custom_metric_key(self):
        metrics = {"my.gauge": {"kind": "gauge", "value": 0.9}}
        report = evaluate_slo(
            {"drift": {"metric": "my.gauge", "max_flag_fraction": 0.5}}, metrics
        )
        assert report.breached


class TestCliGate:
    @pytest.fixture()
    def dump(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(
            json.dumps({"schema": "repro.metrics/v1", "metrics": serving_metrics()})
        )
        return path

    def test_met_spec_exits_zero(self, dump, tmp_path, capsys):
        spec = tmp_path / "slo.toml"
        spec.write_text("[latency]\np99_max_s = 10.0\n")
        code = main(["obs", "slo", str(spec), "--metrics-dump", str(dump)])
        assert code == 0
        assert "SLO met" in capsys.readouterr().out

    def test_breached_spec_exits_one(self, dump, tmp_path, capsys):
        spec = tmp_path / "slo.toml"
        spec.write_text(
            "[latency]\np99_max_s = 0.000000001\n[throughput]\nmin_qps = 1e12\n"
        )
        code = main(["obs", "slo", str(spec), "--metrics-dump", str(dump)])
        assert code == 1
        assert "BREACHED" in capsys.readouterr().out

    def test_no_source_exits_two(self, tmp_path, capsys):
        spec = tmp_path / "slo.toml"
        spec.write_text("[latency]\np99_max_s = 1.0\n")
        code = main(["obs", "slo", str(spec)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_both_sources_exits_two(self, dump, tmp_path, capsys):
        spec = tmp_path / "slo.toml"
        spec.write_text("[latency]\np99_max_s = 1.0\n")
        code = main(
            [
                "obs", "slo", str(spec),
                "--metrics-dump", str(dump),
                "--ledger", str(tmp_path / "l.sqlite"),
            ]
        )
        assert code == 2

    def test_unknown_key_exits_two(self, dump, tmp_path, capsys):
        spec = tmp_path / "slo.toml"
        spec.write_text("[latency]\ntypo_max_s = 1.0\n")
        code = main(["obs", "slo", str(spec), "--metrics-dump", str(dump)])
        assert code == 2
        assert "unknown key" in capsys.readouterr().err


class TestLedgerErrorPaths:
    """Satellite 6: obs verbs never traceback on bad ledgers or queries."""

    def test_corrupt_ledger_exits_two(self, tmp_path, capsys):
        bogus = tmp_path / "not_a_db.sqlite"
        bogus.write_text("this is not sqlite\n")
        code = main(["obs", "runs", "--ledger", str(bogus)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_corrupt_ledger_slo_exits_two(self, tmp_path, capsys):
        bogus = tmp_path / "not_a_db.sqlite"
        bogus.write_text("junk\n")
        spec = tmp_path / "slo.toml"
        spec.write_text("[latency]\np99_max_s = 1.0\n")
        code = main(["obs", "slo", str(spec), "--ledger", str(bogus)])
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_history_without_matching_runs_exits_two(self, tmp_path, capsys):
        ledger = tmp_path / "empty.sqlite"
        code = main(
            ["obs", "history", "no_such_bench", "--ledger", str(ledger)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_trend_on_empty_ledger_exits_cleanly(self, tmp_path, capsys):
        ledger = tmp_path / "empty.sqlite"
        code = main(["obs", "trend", "--ledger", str(ledger)])
        assert code in (0, 2)
        assert "Traceback" not in capsys.readouterr().err

    def test_slo_ledger_without_metrics_runs_exits_two(self, tmp_path, capsys):
        ledger = tmp_path / "fresh.sqlite"
        spec = tmp_path / "slo.toml"
        spec.write_text("[latency]\np99_max_s = 1.0\n")
        code = main(["obs", "slo", str(spec), "--ledger", str(ledger)])
        assert code == 2
        assert "no ingested metrics runs" in capsys.readouterr().err
