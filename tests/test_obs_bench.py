"""Tests for repro.obs.bench — structured benchmark capture and the
noise-aware regression comparison behind ``repro bench-compare``."""

import json
import math

import numpy as np
import pytest

from repro.core.hard import solve_hard_criterion
from repro.datasets.synthetic import make_synthetic_dataset
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.obs.bench import (
    BenchRecord,
    BenchRecorder,
    MemoryBudget,
    MemoryBudgetExceeded,
    compare_runs,
    load_bench_run,
    prune_bench_runs,
    render_bench_compare,
    render_bench_report,
    solver_health_from_trace,
)
from repro.obs.environment import environment_fingerprint


def _record(name, samples, *, repeats=None, **kwargs):
    return BenchRecord.from_samples(name, samples, repeats=repeats, **kwargs)


def _run(*records, run_id="test-run"):
    recorder = BenchRecorder(scale="quick", run_id=run_id)
    for record in records:
        recorder.add(record)
    return recorder.to_run()


class TestEnvironmentFingerprint:
    def test_required_fields(self):
        env = environment_fingerprint()
        assert env["schema"] == "repro.env/v1"
        for key in ("python", "numpy", "scipy", "platform", "machine", "cpu_count"):
            assert env[key], key
        assert env["cpu_count"] >= 1

    def test_returns_fresh_copies(self):
        first = environment_fingerprint()
        first["python"] = "tampered"
        assert environment_fingerprint()["python"] != "tampered"


class TestBenchRecord:
    def test_from_samples_summaries(self):
        record = _record("x", [0.3, 0.1, 0.2])
        assert record.min_s == pytest.approx(0.1)
        assert record.median_s == pytest.approx(0.2)
        assert record.mean_s == pytest.approx(0.2)
        assert record.repeats == 3
        assert record.environment["schema"] == "repro.env/v1"

    def test_from_samples_rejects_empty(self):
        with pytest.raises(ValueError):
            _record("x", [])

    def test_dict_round_trip(self):
        record = _record(
            "x", [0.2, 0.1],
            memory={"peak_bytes": 1024, "net_bytes": 0},
            solver_health={"solves": 2, "methods": {"cg": 2}},
        )
        clone = BenchRecord.from_dict(record.to_dict())
        assert clone.name == "x"
        assert clone.min_s == record.min_s
        assert clone.memory == record.memory
        assert clone.solver_health == record.solver_health

    def test_write_json(self, tmp_path):
        path = _record("x", [0.1]).write_json(tmp_path / "x.json")
        data = json.loads(path.read_text())
        assert data["schema"] == "repro.bench.record/v1"
        assert data["timings_s"]["min"] == pytest.approx(0.1)

    def test_summary_is_one_line(self):
        record = _record("x", [0.1], memory={"peak_bytes": 2_000_000})
        text = record.summary()
        assert "\n" not in text
        assert "x:" in text and "peak 2.00 MB" in text


class TestBenchRecorder:
    def test_measure_counts_and_profiles(self):
        recorder = BenchRecorder(scale="quick")
        calls = []
        result, record = recorder.measure("inc", lambda: calls.append(1) or len(calls), repeats=3)
        # one profiled pass + three timing passes
        assert len(calls) == 4
        assert result == 1  # profiled pass ran first
        assert record.repeats == 3
        assert len(record.samples_s) == 3
        assert record.memory["peak_bytes"] >= 0
        assert recorder.records == [record]

    def test_measure_without_profile(self):
        recorder = BenchRecorder()
        calls = []
        result, record = recorder.measure(
            "plain", lambda: calls.append(1) or "out", repeats=2, profile=False
        )
        assert len(calls) == 2
        assert result == "out"
        assert record.memory == {} and record.solver_health == {}

    def test_measure_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            BenchRecorder().measure("x", lambda: None, repeats=0)

    def test_measure_captures_solver_health(self):
        data = make_synthetic_dataset(40, 20, seed=0)
        bandwidth = paper_bandwidth_rule(40, data.x_labeled.shape[1])
        weights = full_kernel_graph(data.x_all, bandwidth=bandwidth).dense_weights()
        recorder = BenchRecorder()
        _, record = recorder.measure(
            "solve",
            lambda: solve_hard_criterion(
                weights, data.y_labeled, method="cg", check_reachability=False
            ),
            repeats=1,
        )
        health = record.solver_health
        assert health["solves"] == 1
        assert health["methods"] == {"cg": 1}
        assert health["iterations_total"] > 0
        assert health["converged_all"] is True

    def test_measure_leaves_tracemalloc_stopped(self):
        import tracemalloc

        BenchRecorder().measure("x", lambda: np.ones(1000), repeats=1)
        assert not tracemalloc.is_tracing()

    def test_write_and_load_run(self, tmp_path):
        recorder = BenchRecorder(scale="quick", run_id="r1")
        recorder.measure("a", lambda: None, repeats=1, profile=False)
        path = recorder.write_run(tmp_path)
        assert path.name == "BENCH_r1.json"
        run = load_bench_run(path)
        assert run["schema"] == "repro.bench.run/v1"
        assert [r["name"] for r in run["benchmarks"]] == ["a"]
        assert run["environment"]["schema"] == "repro.env/v1"

    def test_load_single_record_wraps_into_run(self, tmp_path):
        path = _record("solo", [0.1]).write_json(tmp_path / "solo.json")
        run = load_bench_run(path)
        assert [r["name"] for r in run["benchmarks"]] == ["solo"]

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError):
            load_bench_run(path)


class TestSolverHealthFromTrace:
    def test_only_top_level_solve_spans_count(self):
        from repro import obs

        tracer = obs.RecordingTracer()
        with obs.use_tracer(tracer):
            with obs.span("repro.solve_hard") as span:
                span.set_attributes(
                    {
                        "solver.method": "cg",
                        "solver.iterations": 12,
                        "solver.converged": True,
                    }
                )
                with obs.span("repro.linalg.cg") as inner:
                    # inner solver span without solver.method: not a solve
                    inner.set_attribute("solver.iterations", 12)
        health = solver_health_from_trace(tracer)
        assert health["solves"] == 1
        assert health["iterations_total"] == 12

    def test_divergence_flips_converged_all(self):
        from repro import obs

        tracer = obs.RecordingTracer()
        with obs.use_tracer(tracer):
            with obs.span("s") as span:
                span.set_attributes(
                    {"solver.method": "cg", "solver.converged": False}
                )
        assert solver_health_from_trace(tracer)["converged_all"] is False


class TestCompareRuns:
    def test_self_comparison_is_clean(self):
        run = _run(_record("a", [0.1, 0.1, 0.1]), _record("b", [0.2, 0.2, 0.2]))
        comparison = compare_runs(run, run)
        assert comparison.ok
        assert {e.status for e in comparison.entries} == {"ok"}

    def test_regression_detected_over_threshold(self):
        old = _run(_record("a", [0.100, 0.101, 0.102]))
        new = _run(_record("a", [0.130, 0.131, 0.132]))
        comparison = compare_runs(old, new, threshold=0.15)
        (entry,) = comparison.entries
        assert entry.status == "regression"
        assert not comparison.ok

    def test_within_threshold_is_ok(self):
        old = _run(_record("a", [0.100] * 3))
        new = _run(_record("a", [0.110] * 3))
        assert compare_runs(old, new, threshold=0.15).ok

    def test_improvement_reported(self):
        old = _run(_record("a", [0.200] * 3))
        new = _run(_record("a", [0.100] * 3))
        (entry,) = compare_runs(old, new).entries
        assert entry.status == "improvement"

    def test_single_shot_never_gates(self):
        # 3x slower but only one repeat on each side: informational only.
        old = _run(_record("a", [0.1]))
        new = _run(_record("a", [0.3]))
        comparison = compare_runs(old, new, threshold=0.15, min_repeats=3)
        (entry,) = comparison.entries
        assert entry.status == "informational"
        assert comparison.ok

    def test_added_and_removed_tracked(self):
        old = _run(_record("gone", [0.1]))
        new = _run(_record("fresh", [0.1]))
        comparison = compare_runs(old, new)
        assert comparison.added == ["fresh"]
        assert comparison.removed == ["gone"]
        assert comparison.entries == []

    def test_nonfinite_old_min_is_informational(self):
        old_run = _run(_record("a", [0.1]))
        old_run["benchmarks"][0]["timings_s"]["min"] = 0.0
        new = _run(_record("a", [0.1]))
        (entry,) = compare_runs(old_run, new).entries
        assert entry.status == "informational"
        assert math.isnan(entry.ratio)

    def test_validates_parameters(self):
        run = _run(_record("a", [0.1]))
        with pytest.raises(ValueError):
            compare_runs(run, run, threshold=0.0)
        with pytest.raises(ValueError):
            compare_runs(run, run, min_repeats=0)

    def test_comparison_is_deterministic(self):
        old = _run(
            _record("a", [0.100, 0.104, 0.102]),
            _record("b", [0.050, 0.052, 0.051]),
            _record("c", [0.3]),
        )
        new = _run(
            _record("a", [0.140, 0.139, 0.150]),
            _record("b", [0.049, 0.050, 0.048]),
            _record("d", [0.2]),
        )
        first = compare_runs(old, new, threshold=0.15)
        second = compare_runs(old, new, threshold=0.15)
        assert [vars(e) for e in first.entries] == [vars(e) for e in second.entries]
        assert first.added == second.added and first.removed == second.removed
        assert render_bench_compare(first) == render_bench_compare(second)


class TestRenderers:
    def test_report_renders_all_benchmarks(self):
        run = _run(
            _record(
                "fast", [0.001] * 3,
                memory={"peak_bytes": 1_000_000},
                solver_health={"solves": 2, "methods": {"cg": 2}},
            ),
            _record("slow", [1.0]),
        )
        text = render_bench_report(run)
        assert "fast" in text and "slow" in text
        assert "cgx2" in text
        assert "test-run" in text

    def test_compare_render_mentions_verdict(self):
        old = _run(_record("a", [0.1] * 3))
        new = _run(_record("a", [0.2] * 3))
        text = render_bench_compare(compare_runs(old, new))
        assert "regression" in text
        assert "threshold 15%" in text


class TestMemoryBudget:
    def test_phase_within_budget_records_usage(self):
        gate = MemoryBudget()
        with gate.phase("alloc", budget_bytes=64 * 2**20):
            buf = np.ones(500_000)  # ~4 MB traced
        del buf
        (usage,) = gate.phases
        assert usage.name == "alloc"
        assert usage.within is True
        assert usage.peak_traced_bytes >= 4_000_000
        assert usage.duration_s > 0
        assert gate.ok

    def test_phase_over_budget_raises(self):
        gate = MemoryBudget()
        with pytest.raises(MemoryBudgetExceeded) as excinfo:
            with gate.phase("alloc", budget_bytes=1_000_000):
                buf = np.ones(500_000)  # ~4 MB > 1 MB budget
        del buf
        assert excinfo.value.usage.name == "alloc"
        assert excinfo.value.usage.within is False
        assert not gate.ok

    def test_enforce_false_records_without_raising(self):
        gate = MemoryBudget(enforce=False)
        with gate.phase("alloc", budget_bytes=1_000_000):
            buf = np.ones(500_000)
        del buf
        assert gate.phases[0].within is False
        assert not gate.ok

    def test_unbudgeted_phase_is_observational(self):
        gate = MemoryBudget()
        with gate.phase("free"):
            buf = np.ones(100_000)
        del buf
        assert gate.phases[0].within is None
        assert gate.ok

    def test_body_exception_propagates_without_usage(self):
        gate = MemoryBudget()
        with pytest.raises(RuntimeError, match="boom"):
            with gate.phase("broken", budget_bytes=2**30):
                raise RuntimeError("boom")
        assert gate.phases == []
        import tracemalloc

        assert not tracemalloc.is_tracing()

    def test_measure_returns_result_and_usage(self):
        gate = MemoryBudget()
        result, usage = gate.measure(
            "work", lambda: 41 + 1, budget_bytes=2**30
        )
        assert result == 42
        assert usage.within is True

    def test_assert_within_regates_post_hoc(self):
        gate = MemoryBudget()
        with gate.phase("alloc"):
            buf = np.ones(500_000)
        del buf
        with pytest.raises(MemoryBudgetExceeded):
            gate.assert_within("alloc", 1_000_000)
        assert gate.phases[0].within is False
        with pytest.raises(KeyError):
            gate.assert_within("never-ran", 2**30)

    def test_report_and_to_dict(self):
        gate = MemoryBudget()
        with gate.phase("a", budget_bytes=2**30):
            pass
        with gate.phase("b"):
            pass
        data = gate.to_dict()
        assert [p["name"] for p in data["phases"]] == ["a", "b"]
        assert data["ok"] is True
        text = gate.report()
        assert "a" in text and "b" in text

    def test_leaves_tracemalloc_stopped_when_owned(self):
        import tracemalloc

        assert not tracemalloc.is_tracing()
        gate = MemoryBudget()
        with gate.phase("x", budget_bytes=2**30):
            pass
        assert not tracemalloc.is_tracing()


class TestPruneBenchRuns:
    def _write_run(self, tmp_path, run_id, names, created):
        recorder = BenchRecorder(scale="quick", run_id=run_id)
        for name in names:
            recorder.add(_record(name, [0.1]))
        path = recorder.write_run(tmp_path)
        data = json.loads(path.read_text())
        data["created_unix"] = created
        path.write_text(json.dumps(data))
        return path

    def test_keeps_newest_per_benchmark(self, tmp_path):
        paths = [
            self._write_run(tmp_path, f"r{i}", ["a"], created=1000 + i)
            for i in range(5)
        ]
        deleted = prune_bench_runs(tmp_path, keep=3)
        # the two oldest runs of "a" are fully superseded
        assert sorted(p.name for p in deleted) == ["BENCH_r0.json", "BENCH_r1.json"]
        for path in paths[2:]:
            assert path.exists()

    def test_unique_benchmark_protects_old_run(self, tmp_path):
        old = self._write_run(tmp_path, "old", ["rare"], created=1)
        for i in range(4):
            self._write_run(tmp_path, f"new{i}", ["common"], created=100 + i)
        deleted = prune_bench_runs(tmp_path, keep=3)
        assert old.exists()  # "rare" has no newer twin
        assert [p.name for p in deleted] == ["BENCH_new0.json"]

    def test_unreadable_files_are_left_alone(self, tmp_path):
        junk = tmp_path / "BENCH_junk.json"
        junk.write_text("{not json")
        assert prune_bench_runs(tmp_path, keep=1) == []
        assert junk.exists()

    def test_keep_zero_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            prune_bench_runs(tmp_path, keep=0)
