"""Tests for the normalized-Laplacian variant and graph diagnostics."""

import numpy as np
import pytest

from repro.core.variants import solve_soft_criterion_normalized
from repro.exceptions import DataValidationError
from repro.graph.diagnostics import diagnose_graph
from repro.graph.laplacian import normalized_laplacian


class TestNormalizedVariant:
    def test_solves_stationarity_system(self, small_problem):
        data, weights, _ = small_problem
        lam = 0.4
        fit = solve_soft_criterion_normalized(weights, data.y_labeled, lam)
        n = data.n_labeled
        system = lam * normalized_laplacian(weights)
        system[np.arange(n), np.arange(n)] += 1.0
        rhs = np.zeros(weights.shape[0])
        rhs[:n] = data.y_labeled
        np.testing.assert_allclose(system @ fit.scores, rhs, atol=1e-8)

    def test_differs_from_unnormalized(self, small_problem):
        from repro.core.soft import solve_soft_criterion

        data, weights, _ = small_problem
        normalized = solve_soft_criterion_normalized(weights, data.y_labeled, 0.5)
        plain = solve_soft_criterion(weights, data.y_labeled, 0.5)
        assert np.max(np.abs(normalized.scores - plain.scores)) > 1e-4

    def test_large_lambda_collapses_to_degree_weighted_profile(self, small_problem):
        """As lambda -> inf the solution approaches the L_sym null space
        direction D^{1/2} 1 (scaled), i.e. scores proportional to sqrt(d)."""
        data, weights, _ = small_problem
        fit = solve_soft_criterion_normalized(weights, data.y_labeled, 1e9)
        sqrt_degrees = np.sqrt(weights.sum(axis=1))
        ratios = fit.scores / sqrt_degrees
        assert np.max(ratios) - np.min(ratios) < 1e-4 * np.abs(ratios).max()

    def test_comparable_quality_to_unnormalized(self):
        """On the paper's workload, both penalties land in the same RMSE
        ballpark at small lambda."""
        from repro.core.soft import solve_soft_criterion
        from repro.datasets.synthetic import make_synthetic_dataset
        from repro.graph.similarity import full_kernel_graph
        from repro.kernels.bandwidth import paper_bandwidth_rule
        from repro.metrics.regression import root_mean_squared_error

        data = make_synthetic_dataset(150, 30, seed=3)
        bandwidth = paper_bandwidth_rule(150, 5)
        weights = full_kernel_graph(data.x_all, bandwidth=bandwidth).dense_weights()
        plain = solve_soft_criterion(weights, data.y_labeled, 0.01)
        norm = solve_soft_criterion_normalized(weights, data.y_labeled, 0.01)
        rmse_plain = root_mean_squared_error(data.q_unlabeled, plain.unlabeled_scores)
        rmse_norm = root_mean_squared_error(data.q_unlabeled, norm.unlabeled_scores)
        assert rmse_norm < 2.0 * rmse_plain

    def test_lambda_zero_rejected(self, small_problem):
        data, weights, _ = small_problem
        with pytest.raises(DataValidationError):
            solve_soft_criterion_normalized(weights, data.y_labeled, 0.0)

    def test_isolated_vertex_rejected(self):
        from repro.exceptions import GraphStructureError

        w = np.zeros((3, 3))
        w[0, 1] = w[1, 0] = 1.0
        with pytest.raises(GraphStructureError):
            solve_soft_criterion_normalized(w, np.array([1.0]), 0.1,
                                            check_reachability=False)


class TestDiagnostics:
    def test_healthy_graph(self, small_problem):
        data, weights, _ = small_problem
        report = diagnose_graph(weights, data.n_labeled)
        assert report.healthy
        assert report.reachable
        assert report.n_components == 1
        assert report.n_vertices == weights.shape[0]
        assert "healthy" in report.summary()

    def test_disconnected_graph_warns(self, disconnected_weights):
        report = diagnose_graph(disconnected_weights, 2)
        assert not report.healthy
        assert not report.reachable
        assert any("cannot reach" in w for w in report.warnings)
        assert report.n_components == 2

    def test_zero_labeled_mass_warns(self):
        w = np.zeros((4, 4))
        np.fill_diagonal(w, 1.0)
        w[0, 1] = w[1, 0] = 0.5  # labeled pair
        w[2, 3] = w[3, 2] = 0.5  # unlabeled pair, no tie to labeled
        report = diagnose_graph(w, 2)
        assert report.labeled_mass_min == 0.0
        assert any("Nadaraya-Watson" in warning for warning in report.warnings)

    def test_flat_kernel_warns(self):
        """All off-diagonal weights nearly identical -> flatness warning."""
        rng = np.random.default_rng(0)
        w = np.full((20, 20), 0.5) + 1e-6 * rng.random((20, 20))
        w = 0.5 * (w + w.T)
        np.fill_diagonal(w, 1.0)
        report = diagnose_graph(w, 10)
        assert report.weight_flatness > 0.9
        assert any("flat" in warning for warning in report.warnings)

    def test_sparse_graph_warns(self):
        w = np.zeros((60, 60))
        # A path graph: density ~ 2/60 per row; overall ~ 0.03 > 0.001,
        # so build something sparser: a single edge chain of 3 vertices
        # in a 60-vertex graph would disconnect; instead connect a star
        # from vertex 0 so reachability holds but density is tiny.
        w[0, 1:] = 1e-13  # below the edge threshold
        w[1:, 0] = 1e-13
        w[0, 1] = w[1, 0] = 1.0
        # Orphans exist -> reachability warning too; check density flag.
        report = diagnose_graph(w, 59)
        assert report.edge_density < 0.001

    def test_invalid_n_labeled(self, tiny_weights):
        with pytest.raises(DataValidationError):
            diagnose_graph(tiny_weights, 0)
        with pytest.raises(DataValidationError):
            diagnose_graph(tiny_weights, 9)

    def test_all_labeled_graph(self, tiny_weights):
        report = diagnose_graph(tiny_weights, 4)
        assert report.labeled_mass_min == float("inf")
