"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import DataValidationError, GraphStructureError
from repro.utils.validation import (
    check_finite_array,
    check_labels,
    check_matrix_2d,
    check_positive_scalar,
    check_square_matrix,
    check_symmetric,
    check_vector,
    check_weight_matrix,
)


class TestFiniteArray:
    def test_converts_to_float64(self):
        out = check_finite_array([1, 2, 3])
        assert out.dtype == np.float64

    def test_rejects_nan(self):
        with pytest.raises(DataValidationError, match="non-finite"):
            check_finite_array([1.0, np.nan])

    def test_rejects_inf(self):
        with pytest.raises(DataValidationError, match="non-finite"):
            check_finite_array([np.inf])

    def test_rejects_strings(self):
        with pytest.raises(DataValidationError):
            check_finite_array(["a", "b"])

    def test_error_names_argument(self):
        with pytest.raises(DataValidationError, match="weights"):
            check_finite_array([np.nan], name="weights")


class TestVector:
    def test_accepts_1d(self):
        out = check_vector([1.0, 2.0])
        assert out.shape == (2,)

    def test_rejects_2d(self):
        with pytest.raises(DataValidationError, match="1-d"):
            check_vector([[1.0], [2.0]])

    def test_min_length(self):
        with pytest.raises(DataValidationError, match="length"):
            check_vector([1.0], min_length=2)


class TestMatrices:
    def test_square_ok(self):
        out = check_square_matrix(np.eye(3))
        assert out.shape == (3, 3)

    def test_rejects_non_square(self):
        with pytest.raises(DataValidationError, match="square"):
            check_square_matrix(np.ones((2, 3)))

    def test_rejects_1d_as_matrix(self):
        with pytest.raises(DataValidationError, match="2-d"):
            check_matrix_2d([1.0, 2.0])

    def test_symmetric_passes(self):
        m = np.array([[1.0, 2.0], [2.0, 1.0]])
        check_symmetric(m)

    def test_asymmetric_raises(self):
        m = np.array([[1.0, 2.0], [2.1, 1.0]])
        with pytest.raises(GraphStructureError, match="symmetric"):
            check_symmetric(m)


class TestWeightMatrix:
    def test_valid_dense(self):
        w = np.array([[0.0, 0.5], [0.5, 0.0]])
        out = check_weight_matrix(w)
        np.testing.assert_array_equal(out, w)

    def test_negative_weight_raises(self):
        w = np.array([[0.0, -0.1], [-0.1, 0.0]])
        with pytest.raises(GraphStructureError, match="negative"):
            check_weight_matrix(w)

    def test_asymmetric_raises(self):
        w = np.array([[0.0, 0.5], [0.4, 0.0]])
        with pytest.raises(GraphStructureError, match="symmetric"):
            check_weight_matrix(w)

    def test_sparse_accepted(self):
        w = sparse.csr_matrix(np.array([[0.0, 0.5], [0.5, 0.0]]))
        out = check_weight_matrix(w)
        assert sparse.issparse(out)

    def test_sparse_negative_raises(self):
        w = sparse.csr_matrix(np.array([[0.0, -0.5], [-0.5, 0.0]]))
        with pytest.raises(GraphStructureError, match="negative"):
            check_weight_matrix(w)

    def test_sparse_rejected_when_dense_required(self):
        w = sparse.csr_matrix(np.eye(2))
        with pytest.raises(DataValidationError, match="dense"):
            check_weight_matrix(w, allow_sparse=False)

    def test_sparse_asymmetric_raises(self):
        w = sparse.csr_matrix(np.array([[0.0, 0.5], [0.3, 0.0]]))
        with pytest.raises(GraphStructureError, match="symmetric"):
            check_weight_matrix(w)


class TestLabels:
    def test_exact_length_enforced(self):
        with pytest.raises(DataValidationError, match="length 3"):
            check_labels([1.0, 2.0], n_labeled=3)

    def test_length_match_ok(self):
        out = check_labels([1.0, 0.0], n_labeled=2)
        assert out.shape == (2,)


class TestPositiveScalar:
    def test_positive_ok(self):
        assert check_positive_scalar(2.5) == 2.5

    def test_zero_rejected_by_default(self):
        with pytest.raises(DataValidationError, match="> 0"):
            check_positive_scalar(0.0)

    def test_zero_allowed_when_requested(self):
        assert check_positive_scalar(0.0, allow_zero=True) == 0.0

    def test_negative_always_rejected(self):
        with pytest.raises(DataValidationError):
            check_positive_scalar(-1.0, allow_zero=True)

    def test_nan_rejected(self):
        with pytest.raises(DataValidationError, match="finite"):
            check_positive_scalar(float("nan"))

    def test_non_numeric_rejected(self):
        with pytest.raises(DataValidationError):
            check_positive_scalar("abc")
