"""Unit tests for iterative label propagation and the LGC baseline."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.hard import solve_hard_criterion
from repro.core.propagation import local_global_consistency, propagate_labels
from repro.exceptions import (
    ConfigurationError,
    ConvergenceError,
    DataValidationError,
    DisconnectedGraphError,
)


class TestPropagation:
    def test_fixed_point_equals_hard_solution(self, small_problem):
        data, weights, _ = small_problem
        hard = solve_hard_criterion(weights, data.y_labeled)
        prop = propagate_labels(weights, data.y_labeled, tol=1e-13)
        assert prop.converged
        np.testing.assert_allclose(
            prop.unlabeled_scores, hard.unlabeled_scores, atol=1e-8
        )

    def test_labeled_scores_clamped(self, small_problem):
        data, weights, _ = small_problem
        prop = propagate_labels(weights, data.y_labeled)
        np.testing.assert_array_equal(
            prop.scores[: data.n_labeled], data.y_labeled
        )

    def test_delta_trace_monotone_tail(self, small_problem):
        """Updates eventually contract geometrically."""
        data, weights, _ = small_problem
        prop = propagate_labels(weights, data.y_labeled, tol=1e-12)
        deltas = np.array(prop.delta_norms)
        tail = deltas[len(deltas) // 2 :]
        assert np.all(np.diff(tail) <= 1e-15)

    def test_sparse_input(self, small_problem):
        data, weights, _ = small_problem
        dense = propagate_labels(weights, data.y_labeled, tol=1e-12)
        sp = propagate_labels(sparse.csr_matrix(weights), data.y_labeled, tol=1e-12)
        np.testing.assert_allclose(
            sp.unlabeled_scores, dense.unlabeled_scores, atol=1e-9
        )

    def test_max_iter_exhaustion_raises(self, small_problem):
        data, weights, _ = small_problem
        with pytest.raises(ConvergenceError) as excinfo:
            propagate_labels(weights, data.y_labeled, tol=1e-15, max_iter=2)
        assert excinfo.value.iterations == 2

    def test_disconnected_raises(self, disconnected_weights):
        with pytest.raises(DisconnectedGraphError):
            propagate_labels(disconnected_weights, np.array([1.0, 0.0]))

    def test_no_unlabeled(self, tiny_weights):
        prop = propagate_labels(tiny_weights, np.ones(4))
        assert prop.iterations == 0
        assert prop.converged
        np.testing.assert_array_equal(prop.scores, np.ones(4))

    def test_zero_degree_unlabeled_vertex_raises(self):
        w = np.zeros((3, 3))
        w[0, 1] = w[1, 0] = 1.0
        # Vertex 2 is isolated AND unlabeled -> reachability error first.
        with pytest.raises((DisconnectedGraphError, DataValidationError)):
            propagate_labels(w, np.array([1.0]))


class TestLocalGlobalConsistency:
    def test_matches_closed_form(self, small_problem):
        data, weights, _ = small_problem
        alpha = 0.9
        fit = local_global_consistency(weights, data.y_labeled, alpha=alpha)
        degrees = weights.sum(axis=1)
        inv_sqrt = 1.0 / np.sqrt(degrees)
        sym = inv_sqrt[:, None] * weights * inv_sqrt[None, :]
        y0 = np.zeros(weights.shape[0])
        y0[: data.n_labeled] = data.y_labeled
        expected = (1 - alpha) * np.linalg.solve(
            np.eye(weights.shape[0]) - alpha * sym, y0
        )
        np.testing.assert_allclose(fit.scores, expected, atol=1e-10)

    def test_alpha_bounds_enforced(self, small_problem):
        data, weights, _ = small_problem
        for alpha in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError):
                local_global_consistency(weights, data.y_labeled, alpha=alpha)

    def test_small_alpha_tracks_initial_labels(self, small_problem):
        """alpha -> 0: scores -> (1-alpha) y0 ~ y0."""
        data, weights, _ = small_problem
        fit = local_global_consistency(weights, data.y_labeled, alpha=1e-6)
        np.testing.assert_allclose(
            fit.scores[: data.n_labeled], data.y_labeled, atol=1e-3
        )

    def test_isolated_vertex_raises(self):
        w = np.zeros((3, 3))
        w[0, 1] = w[1, 0] = 1.0
        with pytest.raises(DataValidationError):
            local_global_consistency(w, np.array([1.0]), alpha=0.5)

    def test_ranking_agrees_with_hard_on_clusters(self, rng):
        """On well-separated clusters LGC and hard rank identically."""
        from repro.graph.similarity import full_kernel_graph

        centers = np.array([[0.0, 0.0], [6.0, 0.0]])
        assignments = np.repeat([0, 1], 20)
        x = centers[assignments] + 0.4 * rng.normal(size=(40, 2))
        y_full = assignments.astype(float)
        # Label 5 points from each cluster (first 10 vertices overall).
        order = np.concatenate(
            [np.arange(0, 5), np.arange(20, 25), np.arange(5, 20), np.arange(25, 40)]
        )
        x, y_full = x[order], y_full[order]
        graph = full_kernel_graph(x, bandwidth=1.0)
        y_labeled = y_full[:10]
        hard = solve_hard_criterion(graph.weights, y_labeled)
        lgc = local_global_consistency(graph.weights, y_labeled, alpha=0.9)
        hidden = y_full[10:]
        assert np.all((hard.unlabeled_scores > 0.5) == (hidden == 1.0))
        b = lgc.scores[10:]
        assert np.all((b > np.median(b)) == (hidden == 1.0))
