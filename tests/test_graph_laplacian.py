"""Unit tests for repro.graph.laplacian."""

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import GraphStructureError
from repro.graph.laplacian import (
    degree_vector,
    laplacian,
    normalized_laplacian,
    random_walk_laplacian,
)
from repro.graph.laplacian import laplacian_by_name


@pytest.fixture
def weights(rng):
    from repro.kernels.library import GaussianKernel

    x = rng.normal(size=(12, 3))
    return GaussianKernel().gram(x, bandwidth=1.0)


class TestDegreeVector:
    def test_row_sums(self, weights):
        np.testing.assert_allclose(degree_vector(weights), weights.sum(axis=1))

    def test_sparse_matches_dense(self, weights):
        np.testing.assert_allclose(
            degree_vector(sparse.csr_matrix(weights)), degree_vector(weights)
        )


class TestUnnormalizedLaplacian:
    def test_row_sums_zero(self, weights):
        lap = laplacian(weights)
        np.testing.assert_allclose(lap.sum(axis=1), np.zeros(12), atol=1e-12)

    def test_symmetric(self, weights):
        lap = laplacian(weights)
        np.testing.assert_allclose(lap, lap.T, atol=1e-12)

    def test_positive_semidefinite(self, weights):
        eigenvalues = np.linalg.eigvalsh(laplacian(weights))
        assert eigenvalues.min() >= -1e-10

    def test_quadratic_form_identity(self, weights, rng):
        """f^T L f == (1/2) sum_ij w_ij (f_i - f_j)^2."""
        f = rng.normal(size=12)
        lap = laplacian(weights)
        diffs = f[:, None] - f[None, :]
        expected = 0.5 * np.sum(weights * diffs**2)
        assert f @ lap @ f == pytest.approx(expected, rel=1e-10)

    def test_constant_vector_in_null_space(self, weights):
        lap = laplacian(weights)
        np.testing.assert_allclose(lap @ np.ones(12), np.zeros(12), atol=1e-10)

    def test_sparse_preserved(self, weights):
        lap = laplacian(sparse.csr_matrix(weights))
        assert sparse.issparse(lap)
        np.testing.assert_allclose(np.asarray(lap.todense()), laplacian(weights))

    def test_self_loops_cancel(self, weights):
        """Self-weights contribute equally to D and W: L is unchanged."""
        with_diag = weights.copy()
        without_diag = weights.copy()
        np.fill_diagonal(without_diag, 0.0)
        delta = laplacian(with_diag) - laplacian(without_diag)
        np.testing.assert_allclose(delta, np.zeros_like(weights), atol=1e-12)


class TestNormalizedLaplacians:
    def test_symmetric_normalized_psd_and_bounded(self, weights):
        lap = normalized_laplacian(weights)
        eigenvalues = np.linalg.eigvalsh(lap)
        assert eigenvalues.min() >= -1e-10
        assert eigenvalues.max() <= 2.0 + 1e-10

    def test_random_walk_rows_sum_zero(self, weights):
        lap = random_walk_laplacian(weights)
        np.testing.assert_allclose(lap.sum(axis=1), np.zeros(12), atol=1e-12)

    def test_similarity_relation(self, weights):
        """L_rw = D^{-1/2} L_sym D^{1/2}: same eigenvalues."""
        sym_vals = np.sort(np.linalg.eigvalsh(normalized_laplacian(weights)))
        rw_vals = np.sort(np.real(np.linalg.eigvals(random_walk_laplacian(weights))))
        np.testing.assert_allclose(sym_vals, rw_vals, atol=1e-8)

    @pytest.mark.parametrize("builder", [normalized_laplacian, random_walk_laplacian])
    def test_isolated_vertex_raises(self, builder):
        w = np.zeros((3, 3))
        w[0, 1] = w[1, 0] = 1.0
        with pytest.raises(GraphStructureError, match="isolated"):
            builder(w)

    @pytest.mark.parametrize("builder", [normalized_laplacian, random_walk_laplacian])
    def test_sparse_matches_dense(self, weights, builder):
        dense = builder(weights)
        sp = builder(sparse.csr_matrix(weights))
        np.testing.assert_allclose(np.asarray(sp.todense()), dense, atol=1e-12)


class TestDispatch:
    def test_by_name(self, weights):
        np.testing.assert_allclose(
            laplacian_by_name(weights, "unnormalized"), laplacian(weights)
        )
        np.testing.assert_allclose(
            laplacian_by_name(weights, "symmetric"), normalized_laplacian(weights)
        )
        np.testing.assert_allclose(
            laplacian_by_name(weights, "random_walk"), random_walk_laplacian(weights)
        )

    def test_unknown_variant_raises(self, weights):
        with pytest.raises(GraphStructureError, match="unknown"):
            laplacian_by_name(weights, "magic")
