"""Final coverage batch: cross-cutting behaviours not pinned elsewhere."""

import numpy as np
import pytest

from repro.datasets.synthetic import make_synthetic_dataset
from repro.experiments.runner import run_replicates


class TestBootstrapMultiMetric:
    def test_independent_intervals_per_metric(self):
        summary = run_replicates(
            lambda rng: {
                "narrow": float(rng.normal(0.0, 0.01)),
                "wide": float(rng.normal(0.0, 10.0)),
            },
            n_replicates=40,
            seed=0,
        )
        narrow_low, narrow_high = summary.bootstrap_ci("narrow", seed=1)
        wide_low, wide_high = summary.bootstrap_ci("wide", seed=1)
        assert (narrow_high - narrow_low) < (wide_high - wide_low)

    def test_values_exposed_per_metric(self):
        summary = run_replicates(
            lambda rng: {"v": float(rng.random())}, n_replicates=5, seed=2
        )
        assert len(summary.values["v"]) == 5
        assert summary.mean("v") == pytest.approx(np.mean(summary.values["v"]))


class TestEstimatorGraphVariants:
    def test_epsilon_graph_through_estimator(self):
        from repro.core.estimators import GraphSSLRegressor

        data = make_synthetic_dataset(40, 10, seed=0)
        model = GraphSSLRegressor(
            graph="epsilon", graph_params={"radius": 2.0}, bandwidth=0.5
        )
        scores = model.fit_predict(data.x_labeled, data.y_labeled, data.x_unlabeled)
        assert scores.shape == (10,)
        assert model.graph_.construction == "epsilon"

    def test_custom_kernel_through_estimator(self):
        from repro.core.estimators import GraphSSLRegressor
        from repro.kernels.library import EpanechnikovKernel

        data = make_synthetic_dataset(40, 10, seed=1)
        model = GraphSSLRegressor(kernel=EpanechnikovKernel(), bandwidth=1.0)
        model.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)
        assert model.graph_.kernel_name == "epanechnikov"

    def test_refit_replaces_state(self):
        from repro.core.estimators import HardLabelPropagation

        a = make_synthetic_dataset(30, 8, seed=2)
        b = make_synthetic_dataset(30, 12, seed=3)
        model = HardLabelPropagation(bandwidth="paper")
        model.fit(a.x_labeled, a.y_labeled, a.x_unlabeled)
        first = model.predict()
        model.fit(b.x_labeled, b.y_labeled, b.x_unlabeled)
        second = model.predict()
        assert first.shape == (8,)
        assert second.shape == (12,)


class TestTheoryReportStrings:
    def test_summary_flags_violations(self):
        from repro.core.theory import check_theorem_assumptions
        from repro.kernels.library import BoxcarKernel

        report = check_theorem_assumptions(
            BoxcarKernel(), n=10, m=10_000, dim=2, bandwidth=0.3
        )
        assert "TOO LARGE" in report.summary()

    def test_summary_ok_case(self):
        from repro.core.theory import check_theorem_assumptions
        from repro.kernels.library import BoxcarKernel

        report = check_theorem_assumptions(
            BoxcarKernel(), n=100_000, m=5, dim=2, bandwidth=0.3
        )
        assert "(ok" in report.summary()


class TestFig5Reproducibility:
    def test_same_seed_same_result(self):
        from repro.experiments.figures import run_figure5

        kwargs = dict(
            images_per_class=20, settings=("80/20",), lambdas=(0.0, 1.0),
            repeats=1, seed=5,
        )
        a = run_figure5(**kwargs)
        b = run_figure5(**kwargs)
        np.testing.assert_array_equal(a.means, b.means)

    def test_stds_and_sems_populated(self):
        from repro.experiments.figures import run_figure5

        result = run_figure5(
            images_per_class=20, settings=("80/20",), lambdas=(0.0,),
            repeats=2, seed=6,
        )
        assert result.stds.shape == result.means.shape
        assert np.all(result.sems <= result.stds + 1e-15)


class TestSolverKwargsPlumbing:
    def test_tol_and_max_iter_reach_backend(self, small_problem):
        from repro.core.hard import solve_hard_criterion
        from repro.exceptions import ConvergenceError

        data, weights, _ = small_problem
        with pytest.raises(ConvergenceError):
            solve_hard_criterion(
                weights, data.y_labeled, method="cg", tol=1e-15, max_iter=1
            )

    def test_loose_tolerance_converges_fast(self, small_problem):
        from repro.core.hard import solve_hard_criterion

        data, weights, _ = small_problem
        fit = solve_hard_criterion(
            weights, data.y_labeled, method="jacobi", tol=1e-3
        )
        exact = solve_hard_criterion(weights, data.y_labeled)
        assert np.max(np.abs(fit.unlabeled_scores - exact.unlabeled_scores)) < 0.1
