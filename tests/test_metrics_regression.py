"""Unit tests for the regression metrics."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.metrics.regression import (
    calibration_error,
    mean_absolute_error,
    mean_squared_error,
    root_mean_squared_error,
)


class TestErrors:
    def test_zero_for_exact(self):
        y = np.array([1.0, 2.0, 3.0])
        assert mean_squared_error(y, y) == 0.0
        assert root_mean_squared_error(y, y) == 0.0
        assert mean_absolute_error(y, y) == 0.0

    def test_hand_computed(self):
        y_true = np.array([0.0, 0.0])
        y_pred = np.array([3.0, 4.0])
        assert mean_squared_error(y_true, y_pred) == pytest.approx(12.5)
        assert root_mean_squared_error(y_true, y_pred) == pytest.approx(np.sqrt(12.5))
        assert mean_absolute_error(y_true, y_pred) == pytest.approx(3.5)

    def test_rmse_is_sqrt_mse(self, rng):
        a, b = rng.normal(size=20), rng.normal(size=20)
        assert root_mean_squared_error(a, b) == pytest.approx(
            np.sqrt(mean_squared_error(a, b))
        )

    def test_symmetry(self, rng):
        a, b = rng.normal(size=15), rng.normal(size=15)
        assert mean_squared_error(a, b) == pytest.approx(mean_squared_error(b, a))

    def test_length_mismatch_raises(self):
        with pytest.raises(DataValidationError, match="equal length"):
            mean_squared_error([1.0], [1.0, 2.0])

    def test_nan_rejected(self):
        with pytest.raises(DataValidationError):
            root_mean_squared_error([np.nan], [1.0])

    def test_translation_invariance(self, rng):
        a, b = rng.normal(size=10), rng.normal(size=10)
        assert mean_squared_error(a + 5, b + 5) == pytest.approx(
            mean_squared_error(a, b)
        )


class TestCalibration:
    def test_perfectly_calibrated_low_error(self, rng):
        probs = rng.uniform(0, 1, size=100_000)
        outcomes = (rng.random(100_000) < probs).astype(float)
        assert calibration_error(outcomes, probs) < 0.02

    def test_overconfident_penalized(self):
        probs = np.full(1000, 0.99)
        outcomes = np.concatenate([np.ones(500), np.zeros(500)])
        assert calibration_error(outcomes, probs) == pytest.approx(0.49, abs=0.01)

    def test_requires_binary_outcomes(self):
        with pytest.raises(DataValidationError, match="binary"):
            calibration_error([0.5, 1.0], [0.5, 0.5])

    def test_requires_unit_interval_probs(self):
        with pytest.raises(DataValidationError):
            calibration_error([0.0, 1.0], [0.5, 1.5])

    def test_invalid_bins(self):
        with pytest.raises(DataValidationError):
            calibration_error([0.0, 1.0], [0.5, 0.5], n_bins=0)
