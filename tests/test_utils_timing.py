"""Unit tests for repro.utils.timing."""

import numpy as np
import pytest

from repro.utils.timing import Stopwatch, fit_power_law


class TestStopwatch:
    def test_measure_records_sample(self):
        watch = Stopwatch()
        with watch.measure("work"):
            pass
        assert watch.count("work") == 1
        assert watch.total("work") >= 0.0

    def test_multiple_labels_kept_separate(self):
        watch = Stopwatch()
        watch.add("a", 1.0)
        watch.add("b", 2.0)
        watch.add("a", 3.0)
        assert watch.total("a") == 4.0
        assert watch.total("b") == 2.0
        assert watch.count("a") == 2

    def test_mean(self):
        watch = Stopwatch()
        watch.add("x", 1.0)
        watch.add("x", 3.0)
        assert watch.mean("x") == 2.0

    def test_mean_of_unknown_label_raises(self):
        with pytest.raises(KeyError):
            Stopwatch().mean("missing")

    def test_total_of_unknown_label_is_zero(self):
        assert Stopwatch().total("missing") == 0.0


class TestFitPowerLaw:
    def test_recovers_exact_cubic(self):
        sizes = np.array([10.0, 20.0, 40.0, 80.0])
        times = 2.0 * sizes**3
        a, b = fit_power_law(sizes, times)
        assert b == pytest.approx(3.0, abs=1e-9)
        assert a == pytest.approx(2.0, rel=1e-9)

    def test_recovers_linear(self):
        sizes = np.array([1.0, 2.0, 4.0])
        _, b = fit_power_law(sizes, 5.0 * sizes)
        assert b == pytest.approx(1.0, abs=1e-9)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [1.0])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [0.0, 1.0])
