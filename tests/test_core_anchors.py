"""Unit tests for the anchor-subset approximation."""

import numpy as np
import pytest

from repro.core.anchors import AnchoredLabelPropagation, solve_anchored
from repro.core.hard import solve_hard_criterion
from repro.datasets.synthetic import make_synthetic_dataset
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule


@pytest.fixture(scope="module")
def problem():
    data = make_synthetic_dataset(50, 30, seed=0)
    bandwidth = paper_bandwidth_rule(50, 5)
    return data, bandwidth


class TestSolveAnchored:
    def test_full_budget_is_exact(self, problem):
        data, bandwidth = problem
        graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
        exact = solve_hard_criterion(graph.weights, data.y_labeled)
        fit = solve_anchored(
            data.x_labeled, data.y_labeled, data.x_unlabeled,
            n_anchors=data.n_unlabeled, bandwidth=bandwidth, seed=0,
        )
        np.testing.assert_allclose(
            fit.unlabeled_scores, exact.unlabeled_scores, atol=1e-10
        )
        assert fit.n_anchors_total == data.n_labeled + data.n_unlabeled

    def test_over_budget_also_exact(self, problem):
        data, bandwidth = problem
        graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
        exact = solve_hard_criterion(graph.weights, data.y_labeled)
        fit = solve_anchored(
            data.x_labeled, data.y_labeled, data.x_unlabeled,
            n_anchors=10_000, bandwidth=bandwidth, seed=0,
        )
        np.testing.assert_allclose(
            fit.unlabeled_scores, exact.unlabeled_scores, atol=1e-10
        )

    @pytest.mark.parametrize("method", ["random", "kmeans"])
    def test_reduced_budget_reasonable(self, problem, method):
        """A small anchor budget stays within a modest deviation."""
        data, bandwidth = problem
        graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
        exact = solve_hard_criterion(graph.weights, data.y_labeled)
        fit = solve_anchored(
            data.x_labeled, data.y_labeled, data.x_unlabeled,
            n_anchors=8, anchor_method=method, bandwidth=bandwidth, seed=0,
        )
        deviation = np.max(np.abs(fit.unlabeled_scores - exact.unlabeled_scores))
        assert deviation < 0.25
        assert fit.anchor_indices.shape == (8,)

    def test_anchor_scores_are_reduced_solve_scores(self, problem):
        """Anchored unlabeled vertices carry the reduced system's scores."""
        data, bandwidth = problem
        fit = solve_anchored(
            data.x_labeled, data.y_labeled, data.x_unlabeled,
            n_anchors=10, anchor_method="random", bandwidth=bandwidth, seed=1,
        )
        x_anchors = np.vstack(
            [data.x_labeled, data.x_unlabeled[fit.anchor_indices]]
        )
        graph = full_kernel_graph(x_anchors, bandwidth=bandwidth)
        reduced = solve_hard_criterion(graph.weights, data.y_labeled)
        np.testing.assert_allclose(
            fit.unlabeled_scores[fit.anchor_indices],
            reduced.unlabeled_scores,
            atol=1e-10,
        )

    def test_budget_grid_monotone_on_average(self, problem):
        """More anchors → no worse agreement with the exact solution
        (checked on mean absolute deviation, k-means anchors)."""
        data, bandwidth = problem
        graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
        exact = solve_hard_criterion(graph.weights, data.y_labeled)
        deviations = []
        for budget in (5, 15, 30):
            fit = solve_anchored(
                data.x_labeled, data.y_labeled, data.x_unlabeled,
                n_anchors=budget, bandwidth=bandwidth, seed=2,
            )
            deviations.append(
                float(np.mean(np.abs(fit.unlabeled_scores - exact.unlabeled_scores)))
            )
        assert deviations[2] <= deviations[0]
        assert deviations[2] == pytest.approx(0.0, abs=1e-10)

    def test_soft_criterion_through_anchors(self, problem):
        data, bandwidth = problem
        fit = solve_anchored(
            data.x_labeled, data.y_labeled, data.x_unlabeled,
            n_anchors=data.n_unlabeled, lam=0.1, bandwidth=bandwidth, seed=0,
        )
        from repro.core.soft import solve_soft_criterion

        graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
        exact = solve_soft_criterion(graph.weights, data.y_labeled, 0.1)
        np.testing.assert_allclose(
            fit.unlabeled_scores, exact.unlabeled_scores, atol=1e-8
        )

    def test_validation(self, problem):
        data, bandwidth = problem
        with pytest.raises(ConfigurationError):
            solve_anchored(
                data.x_labeled, data.y_labeled, data.x_unlabeled,
                n_anchors=0, bandwidth=bandwidth,
            )
        with pytest.raises(ConfigurationError, match="anchor method"):
            solve_anchored(
                data.x_labeled, data.y_labeled, data.x_unlabeled,
                n_anchors=5, anchor_method="grid", bandwidth=bandwidth,
            )
        with pytest.raises(DataValidationError, match="columns"):
            solve_anchored(
                data.x_labeled, data.y_labeled, data.x_unlabeled[:, :3],
                n_anchors=5, bandwidth=bandwidth,
            )


class TestEstimator:
    def test_fit_predict(self, problem):
        data, bandwidth = problem
        model = AnchoredLabelPropagation(12, bandwidth=bandwidth, seed=0)
        scores = model.fit_predict(
            data.x_labeled, data.y_labeled, data.x_unlabeled
        )
        assert scores.shape == (data.n_unlabeled,)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            AnchoredLabelPropagation(5).predict()

    def test_invalid_constructor(self):
        with pytest.raises(ConfigurationError):
            AnchoredLabelPropagation(0)

    def test_median_bandwidth_rule(self, problem):
        data, _ = problem
        model = AnchoredLabelPropagation(10, bandwidth="median", seed=0)
        model.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)
        assert model.bandwidth_ > 0
