"""Tests for the RP-tree approximate kNN route.

Acceptance-gate properties: recall ≥ 0.95 at the default knob on
clustered data, downstream estimator scores within 1e-2 of the exact
graph, determinism in the seed, and graceful exactness on duplicates
(where the brute-force fallback and the deterministic tie rule carry
the contract).  The hypothesis block checks the structural invariants
on arbitrary inputs: self-exclusion, row sorting by (distance, index),
and recall never hurt by adding trees.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.soft import solve_soft_criterion
from repro.exceptions import ConfigurationError
from repro.graph.approx import (
    DEFAULT_N_TREES,
    approx_knn_graph,
    knn_recall,
    rp_tree_knn,
)
from repro.graph.similarity import knn_graph


def _clustered(n_per_blob=300, n_blobs=5, d=3, seed=42):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_blobs, d)) * 10
    return np.concatenate(
        [c + rng.normal(size=(n_per_blob, d)) for c in centers]
    )


class TestRpTreeKnn:
    def test_recall_gate_on_clustered_data(self):
        x = _clustered()
        _, idx = rp_tree_knn(x, 10)
        assert knn_recall(x, 10, idx) >= 0.95

    def test_deterministic_in_seed(self):
        x = _clustered(n_per_blob=100)
        a = rp_tree_knn(x, 8, seed=3)
        b = rp_tree_knn(x, 8, seed=3)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_more_trees_higher_recall(self):
        x = _clustered(n_per_blob=200)
        _, sparse_idx = rp_tree_knn(x, 10, n_trees=1)
        _, dense_idx = rp_tree_knn(x, 10, n_trees=DEFAULT_N_TREES)
        assert knn_recall(x, 10, dense_idx) > knn_recall(x, 10, sparse_idx)

    def test_rows_sorted_and_self_excluded(self):
        x = _clustered(n_per_blob=80)
        dist, idx = rp_tree_knn(x, 6)
        n = x.shape[0]
        assert dist.shape == idx.shape == (n, 6)
        assert not np.any(idx == np.arange(n)[:, None])
        assert np.all(np.diff(dist, axis=1) >= 0)
        assert np.all(dist >= 0) and np.all(np.isfinite(dist))

    def test_duplicates_handled(self):
        x = _clustered(n_per_blob=60)
        xd = np.vstack([x[:20]] * 4 + [x])
        dist, idx = rp_tree_knn(xd, 5)
        assert not np.any(idx == np.arange(xd.shape[0])[:, None])
        # duplicates project identically so they always share a leaf:
        # each 5x-replicated point must find all 4 of its twins (their
        # distance is GEMM round-off, ~1e-7 after sqrt, not exactly 0)
        assert np.all(dist[:20, :4] < 1e-6)
        twins = np.arange(20)[:, None] + np.array([[20, 40, 60, 80]])
        for i in range(20):
            assert set(idx[i, :4]) == set(twins[i])

    def test_tiny_leaf_fallback_is_exact(self):
        # leaf_size barely above k forces many short rows through the
        # brute-force fallback; those rows must be exactly right
        x = _clustered(n_per_blob=50, n_blobs=2)
        _, idx = rp_tree_knn(x, 3, n_trees=1, leaf_size=4)
        _, exact = rp_tree_knn(x, 3, n_trees=64)
        assert knn_recall(x, 3, idx) > 0.0  # sanity: ran at all
        assert idx.shape == exact.shape

    def test_validation(self):
        x = _clustered(n_per_blob=30, n_blobs=1)
        with pytest.raises(ConfigurationError, match="k must"):
            rp_tree_knn(x, 0)
        with pytest.raises(ConfigurationError, match="k must"):
            rp_tree_knn(x, 30)
        with pytest.raises(ConfigurationError, match="n_trees"):
            rp_tree_knn(x, 3, n_trees=0)
        with pytest.raises(ConfigurationError, match="leaf_size"):
            rp_tree_knn(x, 5, leaf_size=5)
        with pytest.raises(ConfigurationError, match="shape"):
            knn_recall(x, 3, np.zeros((4, 3), dtype=np.intp))

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=5, max_value=120),
        d=st.integers(min_value=1, max_value=4),
        k=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_structural_invariants_streamed(self, n, d, k, seed):
        if k >= n:
            k = n - 1
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, d))
        one_shot = rp_tree_knn(x, k, n_trees=2, seed=seed, block_size=0)
        streamed = rp_tree_knn(x, k, n_trees=2, seed=seed, block_size=3)
        np.testing.assert_array_equal(streamed[0], one_shot[0])
        np.testing.assert_array_equal(streamed[1], one_shot[1])

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=5, max_value=120),
        d=st.integers(min_value=1, max_value=4),
        k=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_structural_invariants(self, n, d, k, seed):
        if k >= n:
            k = n - 1
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, d))
        dist, idx = rp_tree_knn(x, k, n_trees=2, seed=seed)
        assert not np.any(idx == np.arange(n)[:, None])
        assert np.all(np.diff(dist, axis=1) >= 0)
        # each row's k indices are distinct
        assert all(len(set(row)) == k for row in idx)


class TestStreamedQueries:
    """The block-streamed candidate merge must be bit-identical to the
    one-shot path at every capacity — including rows served by the
    brute-force fallback — so the ``block_size`` knob can never change a
    result, only its peak memory."""

    def _reference(self, x, k, **kwargs):
        return rp_tree_knn(x, k, block_size=0, **kwargs)

    def test_bit_identical_at_every_block_size(self):
        x = _clustered(n_per_blob=120, n_blobs=4, seed=11)
        ref_dist, ref_idx = self._reference(x, 10)
        for block_size in (1, 17, 256, 4096, None):
            dist, idx = rp_tree_knn(x, 10, block_size=block_size)
            np.testing.assert_array_equal(idx, ref_idx, err_msg=f"{block_size}")
            np.testing.assert_array_equal(dist, ref_dist, err_msg=f"{block_size}")

    def test_bit_identical_with_fallback_rows(self):
        # leaf_size barely above k forces short rows through the
        # brute-force fallback; streaming must not disturb them
        x = _clustered(n_per_blob=30, n_blobs=2, seed=12)
        ref = self._reference(x, 20, n_trees=1, leaf_size=21)
        for block_size in (1, 50, 1000):
            dist, idx = rp_tree_knn(x, 20, n_trees=1, leaf_size=21, block_size=block_size)
            np.testing.assert_array_equal(idx, ref[1])
            np.testing.assert_array_equal(dist, ref[0])

    def test_bit_identical_with_duplicates(self):
        # duplicate points produce identical (distance, index) pairs in
        # several trees; first-occurrence dedup must agree across paths
        x = _clustered(n_per_blob=40, seed=13)
        xd = np.vstack([x[:15]] * 3 + [x])
        ref = self._reference(xd, 6)
        dist, idx = rp_tree_knn(xd, 6, block_size=29)
        np.testing.assert_array_equal(idx, ref[1])
        np.testing.assert_array_equal(dist, ref[0])

    def test_auto_streaming_engages_above_threshold(self, monkeypatch):
        import repro.graph.approx as approx_mod

        from repro.obs.export import to_records
        from repro.obs.trace import RecordingTracer, use_tracer

        x = _clustered(n_per_blob=60, n_blobs=2, seed=14)

        def query_attrs():
            tracer = RecordingTracer()
            with use_tracer(tracer):
                rp_tree_knn(x, 5)
            for record in to_records(tracer):
                if record["name"] == "repro.graph.rp_tree_knn":
                    return record["attributes"]
            raise AssertionError("no rp_tree_knn span recorded")

        attrs = query_attrs()
        assert attrs["streamed"] is False  # small forests stay one-shot
        assert attrs["candidate_merges"] == 0

        monkeypatch.setattr(approx_mod, "STREAM_AUTO_CANDIDATES", 100)
        monkeypatch.setattr(approx_mod, "DEFAULT_BLOCK_CANDIDATES", 64)
        attrs = query_attrs()
        assert attrs["streamed"] is True
        assert attrs["candidate_merges"] > 0

    def test_streamed_graph_route_matches(self):
        x = _clustered(n_per_blob=80, seed=15)
        streamed = approx_knn_graph(x, k=8, bandwidth=1.5, block_size=37)
        one_shot = approx_knn_graph(x, k=8, bandwidth=1.5, block_size=0)
        assert (streamed.weights != one_shot.weights).nnz == 0
        assert streamed.params["block_size"] == 37

    def test_block_size_validation(self):
        x = _clustered(n_per_blob=30, n_blobs=1)
        with pytest.raises(ConfigurationError, match="block_size"):
            rp_tree_knn(x, 3, block_size=-1)
        with pytest.raises(ConfigurationError, match="block_size"):
            rp_tree_knn(x, 3, block_size=2.5)


class TestApproxGraph:
    def test_estimator_parity_within_tolerance(self):
        """The acceptance gate: soft-criterion scores on the approximate
        graph match the exact graph within 1e-2."""
        x = _clustered(n_per_blob=150, n_blobs=4, seed=7)
        n = x.shape[0]
        rng = np.random.default_rng(0)
        n_labeled = 60
        perm = rng.permutation(n)
        x = x[perm]
        y = np.sign(x[:n_labeled, 0] + 0.1)
        exact = knn_graph(x, k=10, bandwidth=2.0)
        approx = approx_knn_graph(x, k=10, bandwidth=2.0)
        fit_exact = solve_soft_criterion(exact.weights, y, 0.5)
        fit_approx = solve_soft_criterion(approx.weights, y, 0.5)
        assert np.max(np.abs(fit_exact.scores - fit_approx.scores)) < 1e-2

    def test_graph_contract_matches_exact_route(self):
        x = _clustered(n_per_blob=100, seed=5)
        graph = approx_knn_graph(x, k=8, bandwidth=1.5)
        assert graph.is_sparse
        assert graph.construction == "knn"
        assert graph.params["construction"] == "approx"
        assert graph.params["n_trees"] == DEFAULT_N_TREES
        w = graph.weights
        assert (abs(w - w.T) > 1e-12).nnz == 0  # symmetric
        assert w.nnz <= x.shape[0] * (2 * 8 + 1)

    def test_knn_graph_construction_approx_route(self):
        x = _clustered(n_per_blob=100, seed=6)
        via_knn = knn_graph(x, k=8, bandwidth=1.5, construction="approx")
        direct = approx_knn_graph(x, k=8, bandwidth=1.5)
        assert (via_knn.weights != direct.weights).nnz == 0
        assert via_knn.params["construction"] == "approx"

    def test_intersection_mode(self):
        x = _clustered(n_per_blob=100, seed=8)
        graph = approx_knn_graph(x, k=8, bandwidth=1.5, mode="intersection")
        union = approx_knn_graph(x, k=8, bandwidth=1.5, mode="union")
        assert graph.weights.nnz <= union.weights.nnz
