"""Unit tests for incremental label acquisition."""

import numpy as np
import pytest

from repro.core.hard import solve_hard_criterion
from repro.core.incremental import IncrementalHarmonicLabeler
from repro.exceptions import DataValidationError


def _resolve_with_extra(weights, y_labeled, extra: dict) -> np.ndarray:
    """From-scratch hard solve after moving `extra` vertices to labeled."""
    n = y_labeled.shape[0]
    total = weights.shape[0]
    extra_vertices = list(extra)
    remaining = [i for i in range(n, total) if i not in extra]
    order = list(range(n)) + extra_vertices + remaining
    w_perm = weights[np.ix_(order, order)]
    y_full = np.concatenate([y_labeled, [extra[v] for v in extra_vertices]])
    return solve_hard_criterion(w_perm, y_full).unlabeled_scores


class TestIncrementalLabeler:
    def test_initial_state_matches_hard(self, small_problem):
        data, weights, _ = small_problem
        labeler = IncrementalHarmonicLabeler(weights, data.y_labeled)
        hard = solve_hard_criterion(weights, data.y_labeled)
        np.testing.assert_allclose(labeler.scores, hard.unlabeled_scores, atol=1e-10)
        assert labeler.unlabeled_vertices == tuple(
            range(data.n_labeled, data.n_labeled + data.n_unlabeled)
        )

    def test_single_observation_equals_resolve(self, small_problem):
        data, weights, _ = small_problem
        labeler = IncrementalHarmonicLabeler(weights, data.y_labeled)
        vertex = labeler.unlabeled_vertices[4]
        labeler.observe(vertex, 1.0)
        expected = _resolve_with_extra(weights, data.y_labeled, {vertex: 1.0})
        np.testing.assert_allclose(labeler.scores, expected, atol=1e-8)

    def test_sequence_of_observations_equals_resolve(self, small_problem, rng):
        data, weights, _ = small_problem
        labeler = IncrementalHarmonicLabeler(weights, data.y_labeled)
        acquired = {}
        for _ in range(5):
            vertex = int(rng.choice(labeler.unlabeled_vertices))
            value = float(rng.integers(0, 2))
            labeler.observe(vertex, value)
            acquired[vertex] = value
            expected = _resolve_with_extra(weights, data.y_labeled, acquired)
            np.testing.assert_allclose(labeler.scores, expected, atol=1e-7)

    def test_variance_shrinks_after_observation(self, small_problem):
        data, weights, _ = small_problem
        labeler = IncrementalHarmonicLabeler(weights, data.y_labeled)
        before = labeler.variances
        vertex = labeler.unlabeled_vertices[0]
        keep = np.arange(1, before.shape[0])
        labeler.observe(vertex, 0.0)
        after = labeler.variances
        assert np.all(after <= before[keep] + 1e-12)

    def test_observed_bookkeeping(self, small_problem):
        data, weights, _ = small_problem
        labeler = IncrementalHarmonicLabeler(weights, data.y_labeled)
        vertex = labeler.unlabeled_vertices[2]
        labeler.observe(vertex, 1.0)
        assert labeler.observed == {vertex: 1.0}
        assert vertex not in labeler.unlabeled_vertices

    def test_score_of_by_original_index(self, small_problem):
        data, weights, _ = small_problem
        labeler = IncrementalHarmonicLabeler(weights, data.y_labeled)
        vertex = labeler.unlabeled_vertices[3]
        assert labeler.score_of(vertex) == pytest.approx(labeler.scores[3])

    def test_double_observation_raises(self, small_problem):
        data, weights, _ = small_problem
        labeler = IncrementalHarmonicLabeler(weights, data.y_labeled)
        vertex = labeler.unlabeled_vertices[0]
        labeler.observe(vertex, 1.0)
        with pytest.raises(DataValidationError, match="not an unlabeled"):
            labeler.observe(vertex, 0.0)

    def test_labeled_vertex_rejected(self, small_problem):
        data, weights, _ = small_problem
        labeler = IncrementalHarmonicLabeler(weights, data.y_labeled)
        with pytest.raises(DataValidationError):
            labeler.observe(0, 1.0)  # vertex 0 is initially labeled

    def test_non_finite_value_rejected(self, small_problem):
        data, weights, _ = small_problem
        labeler = IncrementalHarmonicLabeler(weights, data.y_labeled)
        with pytest.raises(DataValidationError, match="finite"):
            labeler.observe(labeler.unlabeled_vertices[0], np.nan)

    def test_posterior_snapshot(self, small_problem):
        data, weights, _ = small_problem
        labeler = IncrementalHarmonicLabeler(weights, data.y_labeled)
        snapshot = labeler.posterior(field_scale=2.0)
        np.testing.assert_allclose(snapshot.mean, labeler.scores)
        np.testing.assert_allclose(snapshot.variance, 4.0 * labeler.variances)
