"""Tests for the extension (future-work) experiment drivers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.extensions import (
    run_m_growth_study,
    run_metric_study,
    run_tuned_lambda_study,
)


class TestMetricStudy:
    def test_structure(self):
        result = run_metric_study(
            n_labeled=60, n_unlabeled=30, lambdas=(0.0, 1.0),
            n_replicates=4, seed=0,
        )
        assert result.series_labels == ("auc", "mcc", "accuracy")
        assert result.means.shape == (3, 2)
        # AUC/accuracy live in [0, 1]; MCC in [-1, 1].
        assert np.all(result.means <= 1.0 + 1e-12)

    def test_mcc_and_accuracy_degrade_at_large_lambda(self):
        """Threshold-based metrics collapse when scores shrink below 0.5."""
        result = run_metric_study(
            n_labeled=120, n_unlabeled=60, lambdas=(0.0, 5.0),
            n_replicates=10, seed=1,
        )
        mcc = result.series("mcc")
        assert mcc[0] > mcc[1]

    def test_unknown_metric_raises(self):
        with pytest.raises(ConfigurationError, match="unknown metrics"):
            run_metric_study(metrics=("f1",), n_replicates=1)

    def test_metric_subset(self):
        result = run_metric_study(
            n_labeled=40, n_unlabeled=20, lambdas=(0.0,),
            metrics=("auc",), n_replicates=2, seed=2,
        )
        assert result.series_labels == ("auc",)


class TestMGrowthStudy:
    def test_structure_and_coupling(self):
        result = run_m_growth_study(
            gamma=1.0, coefficient=0.5,
            n_values=(40, 80), n_replicates=3, seed=0,
        )
        assert result.m_values == (20, 40)
        assert len(result.hard_rmse) == 2
        assert len(result.to_rows()) == 2
        assert len(result.to_rows()[0]) == len(result.headers())

    def test_superlinear_growth_ratio_increases(self):
        result = run_m_growth_study(
            gamma=1.5, n_values=(40, 80, 160), n_replicates=2, seed=1
        )
        ratios = result.growth_ratio
        assert ratios[-1] > ratios[0]

    def test_hard_ahead_in_both_regimes(self):
        for gamma in (0.5, 1.5):
            result = run_m_growth_study(
                gamma=gamma, n_values=(50, 100), n_replicates=10, seed=2
            )
            assert result.hard_always_ahead()

    def test_invalid_gamma(self):
        with pytest.raises(ConfigurationError):
            run_m_growth_study(gamma=0.0, n_replicates=1)


class TestTunedLambdaStudy:
    def test_structure(self):
        result = run_tuned_lambda_study(
            n_labeled=50, n_unlabeled=15, grid=(0.0, 0.1),
            n_replicates=3, seed=0,
        )
        assert len(result.chosen_lambdas) == 3
        assert all(lam in (0.0, 0.1) for lam in result.chosen_lambdas)
        assert 0.0 <= result.fraction_choosing_zero() <= 1.0
        assert result.hard_rmse > 0 and result.tuned_rmse > 0

    def test_hard_competitive_with_tuned_soft(self):
        """The paper's message: tuning lambda buys nothing over lambda=0."""
        result = run_tuned_lambda_study(
            n_labeled=100, n_unlabeled=25,
            grid=(0.0, 0.01, 0.1, 1.0), n_folds=4,
            n_replicates=8, seed=1,
        )
        # Tuned soft may tie hard (when CV picks 0) but not clearly beat it.
        assert result.hard_rmse <= result.tuned_rmse + 0.005
