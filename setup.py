"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 517 editable installs (which must build a wheel) fail.  This shim
lets ``pip install -e . --no-use-pep517 --no-build-isolation`` use the
legacy ``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
