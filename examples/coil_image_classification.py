"""Image classification on the COIL-like dataset (Figure 5 in miniature).

Generates the procedural stand-in for the Columbia Object Image Library
(24 objects x 72 viewing angles rendered at 16x16; see DESIGN.md for the
substitution rationale), then runs the paper's Section V-B protocol: RBF
similarity with sigma^2 = median pairwise squared distance, rotating
transductive splits at three labeled ratios, AUC per tuning parameter.

Run:  python examples/coil_image_classification.py
"""

import numpy as np

from repro.core.soft import solve_soft_criterion
from repro.datasets import make_coil_like, paper_coil_protocol
from repro.kernels import GaussianKernel, median_heuristic
from repro.metrics import auc


def main() -> None:
    dataset = make_coil_like(images_per_class=100, seed=7)
    print(
        f"COIL-like dataset: {dataset.n_samples} images of size "
        f"{dataset.image_size}x{dataset.image_size}, "
        f"{len(np.unique(dataset.class_labels))} classes, binary grouping "
        f"first-three vs last-three"
    )

    # Show one image as ASCII art so the data feel real.
    image = dataset.image(0)
    shades = " .:-=+*#%@"
    lo, hi = image.min(), image.max()
    normalized = (image - lo) / (hi - lo)
    print(f"\nSample image (object {dataset.object_ids[0]}, "
          f"angle {np.degrees(dataset.angles[0]):.0f} deg):")
    for row in normalized:
        print("  " + "".join(shades[min(9, int(v * 9.99))] * 2 for v in row))

    # The paper's similarity: RBF with sigma^2 = median squared distance.
    sigma = median_heuristic(dataset.images, subsample=500, seed=0)
    weights = GaussianKernel().gram(dataset.images, bandwidth=sigma)

    lambdas = (0.0, 0.01, 0.1, 1.0)
    print(f"\nAUC by tuning parameter (sigma = {sigma:.3f}):")
    header = "  ratio    " + "".join(f"lambda={lam:<7g}" for lam in lambdas)
    print(header)
    for setting in ("80/20", "20/80", "10/90"):
        scores = {lam: [] for lam in lambdas}
        for labeled_idx, unlabeled_idx in paper_coil_protocol(
            dataset.n_samples, setting, repeats=1, seed=1
        ):
            order = np.concatenate([labeled_idx, unlabeled_idx])
            w_perm = weights[np.ix_(order, order)]
            y_labeled = dataset.binary_labels[labeled_idx]
            y_hidden = dataset.binary_labels[unlabeled_idx]
            for lam in lambdas:
                fit = solve_soft_criterion(
                    w_perm, y_labeled, lam, check_reachability=False
                )
                scores[lam].append(auc(y_hidden, fit.unlabeled_scores))
        row = "  " + f"{setting:<9}" + "".join(
            f"{np.mean(scores[lam]):<14.4f}" for lam in lambdas
        )
        print(row)
    print("\nAs in the paper's Figure 5: the hard criterion (lambda=0) gives")
    print("the best AUC, and more labels give better AUC.")


if __name__ == "__main__":
    main()
