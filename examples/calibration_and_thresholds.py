"""Why the soft criterion fails thresholds — and how calibration fixes it.

The paper's metric story in one script: at large lambda the soft
criterion's scores shrink toward the labeled mean, so the fixed 0.5
threshold misclassifies nearly everything even though the *ranking* is
still informative.  Isotonic calibration (fit on the labeled scores) or
a tuned threshold (Youden's J) repairs the damage — but the hard
criterion never needed repairing, which is the practical content of
choosing lambda = 0.

Run:  python examples/calibration_and_thresholds.py
"""

import numpy as np

from repro.core import solve_hard_criterion, solve_soft_criterion
from repro.datasets import make_synthetic_dataset
from repro.graph import full_kernel_graph
from repro.kernels import paper_bandwidth_rule
from repro.metrics import (
    IsotonicCalibrator,
    accuracy,
    auc,
    matthews_corrcoef,
    youden_threshold,
)


def evaluate(name: str, hidden: np.ndarray, scores: np.ndarray, threshold: float = 0.5) -> None:
    predictions = (scores >= threshold).astype(float)
    print(
        f"  {name:<38} AUC {auc(hidden, scores):.3f}   "
        f"acc {accuracy(hidden, predictions):.3f}   "
        f"MCC {matthews_corrcoef(hidden, predictions):+.3f}"
    )


def main() -> None:
    data = make_synthetic_dataset(n_labeled=300, n_unlabeled=150, seed=3)
    bandwidth = paper_bandwidth_rule(300, 5)
    graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
    hidden = data.y_unlabeled

    lam = 5.0
    soft = solve_soft_criterion(graph.weights, data.y_labeled, lam)
    hard = solve_hard_criterion(graph.weights, data.y_labeled)

    print(f"scores at lambda={lam}: soft spread "
          f"[{soft.unlabeled_scores.min():.3f}, {soft.unlabeled_scores.max():.3f}] "
          f"vs hard spread "
          f"[{hard.unlabeled_scores.min():.3f}, {hard.unlabeled_scores.max():.3f}]")
    print("\nunlabeled-set metrics:")
    evaluate("soft, raw 0.5 threshold", hidden, soft.unlabeled_scores)

    # Repair 1: isotonic calibration fitted on the labeled block.
    calibrator = IsotonicCalibrator().fit(soft.labeled_scores, data.y_labeled)
    calibrated = calibrator.transform(soft.unlabeled_scores)
    evaluate("soft, isotonic-calibrated", hidden, calibrated)

    # Repair 2: tune the threshold on the labeled scores instead.
    threshold = youden_threshold(data.y_labeled, soft.labeled_scores)
    evaluate(
        f"soft, Youden threshold ({threshold:.3f})",
        hidden,
        soft.unlabeled_scores,
        threshold,
    )

    evaluate("hard, raw 0.5 threshold", hidden, hard.unlabeled_scores)

    print(
        "\nThe collapse is a calibration artifact: smoothing preserves the\n"
        "ranking (AUC) but shrinks scores below any fixed threshold.\n"
        "Calibration repairs it - the hard criterion simply never breaks."
    )


if __name__ == "__main__":
    main()
