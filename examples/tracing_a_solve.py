"""Tracing a solve: observe solver health instead of guessing.

Runs a hard-criterion and a soft-criterion solve under a recording
tracer, prints the solver convergence evidence now threaded into
``FitResult.solve_info``, and renders the collected trace — spans with
graph degree statistics, condition estimates, and CG iteration counts —
as an aligned report.

Run from the repo root::

    PYTHONPATH=src python examples/tracing_a_solve.py
"""

from repro import obs
from repro.core.hard import solve_hard_criterion
from repro.core.soft import solve_soft_criterion
from repro.datasets.synthetic import make_synthetic_dataset
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.obs.export import render_trace_report, render_tree, write_jsonl


def main() -> None:
    data = make_synthetic_dataset(n_labeled=150, n_unlabeled=60, seed=0)
    bandwidth = paper_bandwidth_rule(150, data.x_labeled.shape[1])

    # 1. Solver health is available even without tracing: every fit now
    #    carries a SolveInfo from its main linear solve.
    graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
    fit = solve_hard_criterion(graph.weights, data.y_labeled, method="cg")
    info = fit.solve_info
    print(
        f"hard/cg: {info.iterations} iterations, final residual "
        f"{info.final_residual:.2e}, converged={info.converged}"
    )

    # 2. Install a recording tracer to capture the full span tree with
    #    health probes (condition estimates, degree stats, block sizes).
    tracer = obs.RecordingTracer()
    with obs.use_tracer(tracer):
        with obs.span("example.workload", n=150, m=60):
            graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
            solve_hard_criterion(graph.weights, data.y_labeled, method="cg")
            solve_soft_criterion(graph.weights, data.y_labeled, 0.1, method="schur")

    print()
    print(render_tree(tracer))
    print()
    print(render_trace_report(tracer))

    # 3. Persist for later inspection with `python -m repro trace-report`.
    path = write_jsonl(tracer, "/tmp/tracing_a_solve.jsonl")
    print(f"\nwrote {path} — render it with: python -m repro trace-report {path}")

    # 4. Metrics accumulated in the global registry along the way.
    print("\nmetrics registry:")
    for name, data_ in obs.get_registry().snapshot().items():
        print(f"  {name}: {data_}")


if __name__ == "__main__":
    main()
