"""A guided tour of the paper's theory, verified numerically.

Walks through the paper's chain of reasoning with live numbers:

1. Theorem II.1's assumptions, checked for a concrete problem;
2. the proof's constructs (tiny elements, Neumann convergence, the
   g correction, the Nadaraya-Watson gap) shrinking as n grows;
3. the resulting empirical consistency curve of the hard criterion;
4. Proposition II.2's counterexample: the soft criterion collapsing to
   the constant labeled-mean prediction as lambda grows.

Run:  python examples/consistency_study.py
"""

from repro.core.theory import check_theorem_assumptions
from repro.experiments.figures import run_prop22_experiment
from repro.experiments.report import ascii_table
from repro.kernels import GaussianKernel, TruncatedGaussianKernel, paper_bandwidth_rule
from repro.validation import run_consistency_curve, run_proof_construct_sweep


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Theorem II.1's assumptions for a concrete problem size.
    # ------------------------------------------------------------------
    n, m, d = 500, 30, 5
    bandwidth = paper_bandwidth_rule(n, d)
    print("=== Theorem II.1 assumption check (n=500, m=30, d=5) ===")
    for kernel in (GaussianKernel(), TruncatedGaussianKernel()):
        report = check_theorem_assumptions(
            kernel, n=n, m=m, dim=d, bandwidth=bandwidth
        )
        print(f"\n{kernel.name}:")
        print("  " + report.summary().replace("\n", "\n  "))
    print("\nNote: the paper's own experiments use the plain Gaussian RBF,")
    print("which violates compact support; truncating it satisfies all")
    print("three conditions and changes nothing numerically.")

    # ------------------------------------------------------------------
    # 2. The proof's constructs shrink as n grows.
    # ------------------------------------------------------------------
    print("\n=== Section IV proof constructs vs n ===")
    snaps = run_proof_construct_sweep(n_values=(50, 100, 200, 400), n_unlabeled=20, seed=0)
    rows = [
        [s.n, s.tiny_elements_max, s.spectral_radius, s.g_max, s.hard_nw_gap]
        for s in snaps
    ]
    print(
        ascii_table(
            ["n", "||D22^-1 W22||max", "spec radius", "max |g|", "max |f-NW|"], rows
        )
    )

    # ------------------------------------------------------------------
    # 3. Empirical consistency of the hard criterion.
    # ------------------------------------------------------------------
    print("\n=== Empirical consistency (hard criterion vs Nadaraya-Watson) ===")
    curve = run_consistency_curve(
        n_values=(25, 50, 100, 200, 400), n_unlabeled=20, n_replicates=40, seed=0
    )
    print(ascii_table(curve.headers(), curve.to_rows()))

    # ------------------------------------------------------------------
    # 4. Proposition II.2's counterexample.
    # ------------------------------------------------------------------
    print("\n=== Proposition II.2: the soft criterion's collapse ===")
    prop22 = run_prop22_experiment(n_labeled=200, n_unlabeled=40, seed=0)
    rows = [
        [f"{lam:.0e}", dist, err]
        for lam, dist, err in zip(
            prop22.lambdas, prop22.distance_to_mean, prop22.rmse
        )
    ]
    print(ascii_table(prop22.headers(), rows))
    print(
        f"\nhard-criterion RMSE on the same problem: {prop22.hard_rmse:.4f}; "
        f"the gap at lambda={prop22.lambdas[-1]:.0e} is "
        f"{prop22.inconsistency_gap:.4f} - the inconsistency the paper proves."
    )


if __name__ == "__main__":
    main()
