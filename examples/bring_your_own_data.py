"""Bring your own data: CSV in, diagnosed graph, scores out.

The workflow a downstream user follows with their own partially-labeled
dataset:

1. load a CSV whose label column has empty cells for unlabeled rows;
2. run the graph health diagnostics before trusting any scores;
3. fit the hard criterion, get transductive scores with uncertainty;
4. extend to brand-new points with the induction formula;
5. save the problem as NPZ for ``python -m repro diagnose``.

This script writes a demo CSV first so it is fully self-contained.

Run:  python examples/bring_your_own_data.py
"""

import csv
import tempfile
from pathlib import Path

import numpy as np

from repro.core import GraphSSLClassifier, gaussian_field_posterior
from repro.datasets import (
    load_transductive_csv,
    save_transductive_npz,
    two_moons,
)
from repro.datasets.io import TransductiveProblem
from repro.graph import diagnose_graph, full_kernel_graph


def write_demo_csv(path: Path) -> None:
    """Materialize a two-moons problem as a user-style CSV."""
    x, y = two_moons(200, noise=0.07, seed=5)
    rng = np.random.default_rng(0)
    labeled_mask = np.zeros(200, dtype=bool)
    for cls in (0.0, 1.0):
        members = np.flatnonzero(y == cls)
        labeled_mask[rng.choice(members, size=8, replace=False)] = True
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["x1", "x2", "label"])
        for row, label, known in zip(x, y, labeled_mask):
            writer.writerow([f"{row[0]:.6f}", f"{row[1]:.6f}", int(label) if known else ""])


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_byod_"))
    csv_path = workdir / "my_data.csv"
    write_demo_csv(csv_path)

    # 1. Load: empty label cells mark the unlabeled rows.
    problem = load_transductive_csv(csv_path, label_column="label")
    print(
        f"loaded {csv_path.name}: {problem.n_labeled} labeled rows, "
        f"{problem.n_unlabeled} unlabeled rows, features {problem.feature_names}"
    )

    # 2. Diagnose the graph before trusting anything.
    bandwidth = 0.25
    graph = full_kernel_graph(problem.x_all, bandwidth=bandwidth)
    report = diagnose_graph(graph.weights, problem.n_labeled)
    print("\n" + report.summary())

    # 3. Fit and score, with Gaussian-field uncertainty.
    model = GraphSSLClassifier(bandwidth=bandwidth)
    model.fit(problem.x_labeled, problem.y_labeled, problem.x_unlabeled)
    proba = model.predict_proba()
    posterior = gaussian_field_posterior(graph.weights, problem.y_labeled)
    sd = posterior.standard_deviation()
    print(
        f"\nscored {problem.n_unlabeled} rows: "
        f"P(class 1) in [{proba.min():.3f}, {proba.max():.3f}], "
        f"posterior sd in [{sd.min():.3f}, {sd.max():.3f}]"
    )
    most_uncertain = posterior.most_uncertain(3)
    print(f"rows worth labeling next (highest uncertainty): {most_uncertain.tolist()}")

    # 4. Score brand-new points without refitting.
    fresh = np.array([[0.0, 1.0], [1.0, -0.5]])
    induced = model.induce_proba(fresh)
    for point, p in zip(fresh, induced):
        print(f"induced P(class 1) at {point.tolist()}: {p:.3f}")

    # 5. Persist for the CLI: python -m repro diagnose <file>.
    npz_path = save_transductive_npz(
        workdir / "my_data.npz",
        TransductiveProblem(
            x_labeled=problem.x_labeled,
            y_labeled=problem.y_labeled,
            x_unlabeled=problem.x_unlabeled,
        ),
    )
    print(f"\nsaved NPZ for the CLI: python -m repro diagnose {npz_path}")


if __name__ == "__main__":
    main()
