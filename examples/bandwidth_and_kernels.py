"""Choosing a kernel and a bandwidth: the knobs Theorem II.1 cares about.

The theorem requires a bounded, compactly-supported kernel and a
bandwidth with h -> 0, n h^d -> inf.  This example compares kernel
families and bandwidth rules on the paper's synthetic workload using the
library's ablation drivers, and prints each kernel's condition report.

Run:  python examples/bandwidth_and_kernels.py
"""

from repro.experiments.ablations import run_bandwidth_ablation, run_kernel_ablation
from repro.experiments.report import format_sweep_result
from repro.kernels import kernel_by_name


def main() -> None:
    print("=== Kernel condition reports (Theorem II.1, conditions i-iii) ===")
    for name in (
        "gaussian",
        "truncated_gaussian",
        "boxcar",
        "epanechnikov",
        "triangular",
        "tricube",
        "cosine",
        "cauchy",
    ):
        kernel = kernel_by_name(name)
        print(f"  {name:<20} {kernel.theorem_conditions().summary()}")

    print("\n=== Kernel family ablation (hard criterion, Model 1) ===")
    kernels = run_kernel_ablation(
        n_labeled=200, n_unlabeled=30, n_replicates=20, seed=0
    )
    print(format_sweep_result(kernels))
    print("\nCompactly-supported kernels are competitive with the paper's")
    print("RBF - the theorem's condition (ii) costs nothing in practice.")

    print("\n=== Bandwidth rule ablation ===")
    bandwidths = run_bandwidth_ablation(
        n_labeled=200, n_unlabeled=30, n_replicates=20, seed=1
    )
    print(format_sweep_result(bandwidths))
    print("\nThe paper's rule (log n / n)^(1/d) is designed for the theorem's")
    print("limits; the median heuristic is the common practical default.")


if __name__ == "__main__":
    main()
