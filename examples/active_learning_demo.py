"""Active learning with harmonic functions: which label to buy next?

The hard criterion's Gaussian-field view makes label acquisition a
Bayesian decision: query the vertex whose answer most reduces posterior
uncertainty (variance strategy) or expected risk (Zhu-Lafferty-
Ghahramani's strategy).  This example runs all four built-in strategies
on the two-moons pool with the same seed labels, prints their learning
curves side by side, and demonstrates the O(m^2) incremental labeler
that makes per-query retraining cheap.

Run:  python examples/active_learning_demo.py
"""

import numpy as np

from repro.active import run_active_learning
from repro.core import IncrementalHarmonicLabeler, gaussian_field_posterior
from repro.datasets import two_moons
from repro.graph import full_kernel_graph


def main() -> None:
    x, y = two_moons(200, noise=0.08, seed=0)
    weights = full_kernel_graph(x, bandwidth=0.3).dense_weights()
    seeds = np.concatenate(
        [np.flatnonzero(y == 0.0)[:2], np.flatnonzero(y == 1.0)[:2]]
    )
    budget = 12

    print(f"Pool: {len(y)} points, {len(seeds)} seed labels, budget {budget}\n")
    histories = {}
    for name in ("random", "margin", "variance", "expected_risk"):
        histories[name] = run_active_learning(
            weights, y, seed_indices=seeds, budget=budget,
            strategy=name, rng_seed=1,
        )

    header = "labels  " + "".join(f"{name:>14}" for name in histories)
    print(header)
    steps = len(next(iter(histories.values())).accuracies)
    for step in range(steps):
        n_labels = len(seeds) + step
        row = f"{n_labels:>6}  " + "".join(
            f"{hist.accuracies[step]:>14.3f}" for hist in histories.values()
        )
        print(row)
    print()
    for name, hist in histories.items():
        print(f"{name:>14}: area under learning curve = {hist.area_under_curve():.4f}")

    # ------------------------------------------------------------------
    # The incremental labeler: exact Gaussian conditioning per query.
    # ------------------------------------------------------------------
    print("\nIncremental retraining (exact, O(m^2) per label):")
    order = np.concatenate([seeds, np.setdiff1d(np.arange(len(y)), seeds)])
    w_perm = weights[np.ix_(order, order)]
    labeler = IncrementalHarmonicLabeler(w_perm, y[seeds])
    posterior = gaussian_field_posterior(w_perm, y[seeds])
    print(f"  initial max posterior sd: {posterior.standard_deviation().max():.4f}")
    for step in range(3):
        position = int(np.argmax(labeler.variances))
        vertex = labeler.unlabeled_vertices[position]
        truth = y[order[vertex]]
        labeler.observe(vertex, truth)
        print(
            f"  query {step + 1}: vertex {vertex} (true label {truth:.0f}) -> "
            f"max sd now {np.sqrt(labeler.variances.max()):.4f}"
        )


if __name__ == "__main__":
    main()
