"""Benchmark capture: structured performance evidence, not just tables.

Walks the performance-observability layer end to end: measures two
solver configurations with a ``BenchRecorder`` (repeated timings, a
tracemalloc-profiled pass, solver health from the span trace), records
per-span memory peaks with an opt-in memory tracer, writes the session
trajectory ``BENCH_<runid>.json``, and runs the noise-aware comparison
that backs ``python -m repro bench-compare`` against itself.

Run from the repo root::

    PYTHONPATH=src python examples/benchmark_capture.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import obs
from repro.core.hard import solve_hard_criterion
from repro.core.soft import solve_soft_criterion
from repro.datasets.synthetic import make_synthetic_dataset
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.obs.bench import (
    BenchRecorder,
    compare_runs,
    load_bench_run,
    render_bench_compare,
    render_bench_report,
)


def main() -> None:
    data = make_synthetic_dataset(n_labeled=200, n_unlabeled=80, seed=0)
    bandwidth = paper_bandwidth_rule(200, data.x_labeled.shape[1])
    weights = full_kernel_graph(data.x_all, bandwidth=bandwidth).dense_weights()

    # 1. Measure: one profiled pass (tracemalloc + span trace -> memory
    #    and solver health) followed by clean repeated timings.
    recorder = BenchRecorder(scale="quick")
    _, hard_record = recorder.measure(
        "hard_cg",
        lambda: solve_hard_criterion(
            weights, data.y_labeled, method="cg", check_reachability=False
        ),
        repeats=5,
    )
    _, soft_record = recorder.measure(
        "soft_schur",
        lambda: solve_soft_criterion(
            weights, data.y_labeled, 0.1, method="schur", check_reachability=False
        ),
        repeats=5,
    )
    for record in (hard_record, soft_record):
        print(record.summary())
        print(f"  solver health: {record.solver_health}")

    # 2. Opt-in memory spans: per-span tracemalloc peaks, nested peaks
    #    attributed to the span that caused them.
    tracer = obs.RecordingTracer(track_memory=True)
    try:
        with obs.use_tracer(tracer):
            with obs.span("workload"):
                gram = np.ones((500, 500))
                with obs.span("transient"):
                    tmp = np.ones(1_000_000)
                    del tmp
                del gram
    finally:
        tracer.close()
    for span in tracer.iter_spans():
        peak = span.attributes["memory.peak_bytes"]
        print(f"memory span {span.name!r}: peak {peak / 1e6:.2f} MB")

    # 3. The session trajectory file — the artifact the bench harness
    #    writes at the repo root after every benchmarks/ run.
    out_dir = Path(tempfile.mkdtemp(prefix="bench_capture_"))
    path = recorder.write_run(out_dir)
    print(f"\nwrote bench trajectory {path}")
    run = load_bench_run(path)
    print(render_bench_report(run))

    # 4. The regression gate, against itself: identical inputs always
    #    compare clean and deterministically.
    comparison = compare_runs(run, run, threshold=0.15)
    print()
    print(render_bench_compare(comparison))
    print(f"\nself-comparison ok: {comparison.ok}")


if __name__ == "__main__":
    main()
