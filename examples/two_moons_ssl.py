"""The classic SSL showcase: two moons with ten labels.

Semi-supervised learning pays off when unlabeled data reveal manifold
structure that a handful of labels cannot.  This example labels just 5
points per moon out of 400, runs the hard criterion, and compares its
accuracy with a purely supervised k-NN baseline trained on the same 10
labels.  An ASCII scatter plot shows the transductive predictions.

Run:  python examples/two_moons_ssl.py
"""

import numpy as np

from repro import GraphSSLClassifier
from repro.core.baselines import KNNClassifier
from repro.datasets import two_moons
from repro.metrics import accuracy


def ascii_scatter(x: np.ndarray, labels: np.ndarray, width: int = 68, height: int = 20) -> str:
    """Render labeled 2-d points as an ASCII grid ('o' vs 'x')."""
    x0 = (x[:, 0] - x[:, 0].min()) / np.ptp(x[:, 0])
    x1 = (x[:, 1] - x[:, 1].min()) / np.ptp(x[:, 1])
    grid = [[" "] * width for _ in range(height)]
    for (cx, cy), label in zip(zip(x0, x1), labels):
        col = min(width - 1, int(cx * (width - 1)))
        row = min(height - 1, int((1 - cy) * (height - 1)))
        grid[row][col] = "x" if label > 0.5 else "o"
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    x, y = two_moons(400, noise=0.06, seed=0)

    # Label 5 points per moon; everything else is unlabeled.
    labeled_idx = np.concatenate(
        [np.flatnonzero(y == 0.0)[:5], np.flatnonzero(y == 1.0)[:5]]
    )
    unlabeled_idx = np.setdiff1d(np.arange(len(y)), labeled_idx)

    ssl = GraphSSLClassifier(bandwidth=0.25)
    ssl.fit(x[labeled_idx], y[labeled_idx], x[unlabeled_idx])
    ssl_predictions = ssl.predict()
    ssl_accuracy = accuracy(y[unlabeled_idx], ssl_predictions)

    knn = KNNClassifier(k=3).fit(x[labeled_idx], y[labeled_idx])
    knn_accuracy = accuracy(y[unlabeled_idx], knn.predict(x[unlabeled_idx]))

    print("Two moons, 400 points, 10 labels (5 per moon)")
    print(f"  graph SSL (hard criterion) accuracy: {ssl_accuracy:.3f}")
    print(f"  supervised 3-NN baseline accuracy:   {knn_accuracy:.3f}")
    print()
    print("Transductive predictions (o = moon 0, x = moon 1):")
    print(ascii_scatter(x[unlabeled_idx], ssl_predictions))


if __name__ == "__main__":
    main()
