"""Multiclass label propagation on the COIL-like dataset.

The paper binarizes COIL's six classes; this example keeps all six and
runs the one-vs-rest hard criterion (Zhu et al.'s multiclass harmonic
solution): one matrix factorization serves all six score columns, rows
form a proper class posterior, and the argmax gives the prediction.
Also shows per-class accuracy and the confusion structure.

Run:  python examples/multiclass_coil.py
"""

import numpy as np

from repro.core import MulticlassLabelPropagation
from repro.datasets import make_coil_like
from repro.utils.rng import as_rng


def main() -> None:
    # ring_amplitude > 0 gives every object a rotation-invariant texture
    # signature, the regime where objects form clean graph clusters (the
    # default 0.0 is calibrated for Figure 5's harder regime instead).
    dataset = make_coil_like(images_per_class=80, ring_amplitude=0.2, seed=3)
    n_total = dataset.n_samples
    rng = as_rng(0)

    # 30% labeled, stratified by chance through shuffling.
    permutation = rng.permutation(n_total)
    n_labeled = int(0.3 * n_total)
    labeled_idx = permutation[:n_labeled]
    unlabeled_idx = permutation[n_labeled:]

    # Multiclass argmax needs a *local* graph: at the global median
    # bandwidth the kernel is nearly flat across 256-d images and the
    # six score columns barely differ.  A fraction of the median keeps
    # only genuinely similar images connected.
    from repro.kernels import median_heuristic

    bandwidth = 0.22 * median_heuristic(dataset.images, subsample=400, seed=0)
    model = MulticlassLabelPropagation(bandwidth=bandwidth)
    model.fit(
        dataset.images[labeled_idx],
        dataset.class_labels[labeled_idx].astype(float),
        dataset.images[unlabeled_idx],
    )
    predictions = model.predict()
    truth = dataset.class_labels[unlabeled_idx].astype(float)

    overall = float(np.mean(predictions == truth))
    print(
        f"COIL-like 6-class task: {n_labeled} labeled / "
        f"{len(unlabeled_idx)} unlabeled images"
    )
    print(f"overall accuracy: {overall:.3f} (chance = {1/6:.3f})\n")

    print("per-class accuracy:")
    for cls in model.classes_:
        mask = truth == cls
        acc = float(np.mean(predictions[mask] == cls))
        print(f"  class {int(cls)}: {acc:.3f}  ({int(mask.sum())} images)")

    print("\nconfusion matrix (rows = truth, cols = predicted):")
    k = len(model.classes_)
    confusion = np.zeros((k, k), dtype=int)
    for t, p in zip(truth, predictions):
        confusion[int(t), int(p)] += 1
    header = "      " + "".join(f"{int(c):>6}" for c in model.classes_)
    print(header)
    for i, row in enumerate(confusion):
        print(f"  {i:>3} " + "".join(f"{v:>6}" for v in row))

    proba = model.predict_proba()
    print(f"\nscore rows sum to one: max deviation "
          f"{np.max(np.abs(proba.sum(axis=1) - 1.0)):.2e}")


if __name__ == "__main__":
    main()
