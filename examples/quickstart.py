"""Quickstart: graph-based semi-supervised learning in a few lines.

Draws the paper's synthetic dataset (Section V-A), fits the hard
criterion (the paper's recommended method) and the soft criterion at a
few tuning parameters, and compares their RMSE against the true
regression function — a miniature of Figure 1's takeaway: lambda = 0 is
best, and you never have to tune it.

Run:  python examples/quickstart.py
"""

from repro import HardLabelPropagation, SoftLabelPropagation
from repro.datasets import make_synthetic_dataset
from repro.metrics import root_mean_squared_error


def main() -> None:
    # 200 labeled points, 30 unlabeled points whose scores we want.
    data = make_synthetic_dataset(n_labeled=200, n_unlabeled=30, seed=0)

    # The hard criterion (Eq. 1/5): scores clamped to the observed labels,
    # harmonic interpolation elsewhere.  bandwidth="paper" applies the
    # paper's rule h = (log n / n)^(1/d).
    hard = HardLabelPropagation(bandwidth="paper")
    hard_scores = hard.fit_predict(data.x_labeled, data.y_labeled, data.x_unlabeled)
    hard_rmse = root_mean_squared_error(data.q_unlabeled, hard_scores)
    print(f"hard criterion (lambda=0):    RMSE = {hard_rmse:.4f}")

    # The soft criterion (Eq. 2/4) trades label fit against smoothness.
    for lam in (0.01, 0.1, 5.0):
        soft = SoftLabelPropagation(lam, bandwidth="paper")
        soft_scores = soft.fit_predict(
            data.x_labeled, data.y_labeled, data.x_unlabeled
        )
        rmse = root_mean_squared_error(data.q_unlabeled, soft_scores)
        print(f"soft criterion (lambda={lam:>4}): RMSE = {rmse:.4f}")

    print()
    print("The hard criterion wins - and needs no tuning parameter.")
    print("That is the paper's Theorem II.1 + Proposition II.2 in action.")


if __name__ == "__main__":
    main()
