"""Solver backends and the paper's complexity claim.

The hard criterion is one SPD linear solve, and the library offers five
interchangeable backends - dense Cholesky, sparse LU, conjugate
gradients, Jacobi, Gauss-Seidel - plus the classical label-propagation
fixed point (whose iteration *is* Jacobi on Zhu et al.'s update).  This
example shows they agree to solver tolerance, compares their speed, and
reproduces Section II's claim that the hard criterion's O(m^3) solve
beats the soft criterion's O((n+m)^3) full-system form.

Run:  python examples/solver_backends.py
"""

from repro.core.propagation import propagate_labels
from repro.datasets import make_synthetic_dataset
from repro.experiments.ablations import run_solver_ablation
from repro.experiments.figures import run_complexity_experiment
from repro.experiments.report import ascii_table
from repro.graph import full_kernel_graph
from repro.kernels import paper_bandwidth_rule


def main() -> None:
    print("=== Solver backends on one hard-criterion problem ===")
    ablation = run_solver_ablation(n_labeled=400, n_unlabeled=150, repeats=3, seed=0)
    print(ascii_table(ablation.headers(), ablation.to_rows()))

    print("\n=== Label propagation's convergence trace ===")
    data = make_synthetic_dataset(300, 80, seed=1)
    bandwidth = paper_bandwidth_rule(300, 5)
    graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
    result = propagate_labels(graph.weights, data.y_labeled, tol=1e-10)
    deltas = result.delta_norms
    print(f"converged in {result.iterations} iterations; update norms:")
    checkpoints = [0, 1, 2, 5, 10, result.iterations - 1]
    for i in sorted(set(min(c, result.iterations - 1) for c in checkpoints)):
        print(f"  iteration {i + 1:>3}: max update = {deltas[i]:.2e}")

    print("\n=== Section II complexity claim: hard O(m^3) vs soft O((n+m)^3) ===")
    complexity = run_complexity_experiment(
        total_sizes=(150, 300, 600), repeats=3, seed=0
    )
    print(ascii_table(complexity.headers(), complexity.to_rows()))
    print(
        f"fitted growth exponents: hard = {complexity.hard_exponent:.2f}, "
        f"soft-full = {complexity.soft_exponent:.2f}"
    )


if __name__ == "__main__":
    main()
