"""Bench: regenerate Figure 4 (RMSE vs m, Model 2 non-linear logit, n = 100).

Same criteria as Figure 2, under the interaction-term logit.
"""

from conftest import publish, replicates

from repro.experiments.figures import run_figure4
from repro.experiments.report import format_sweep_result, write_csv


def test_bench_figure4(bench, results_dir):
    result, record = bench.measure(
        "figure4",
        lambda: run_figure4(n_replicates=replicates(25, 1000), seed=4),
        repeats=1,
    )
    publish(results_dir, "figure4", format_sweep_result(result), record=record)
    write_csv(results_dir / "figure4.csv", result.headers(), result.to_rows())

    slack = 0.01
    assert result.series_dominates("lambda=0", "lambda=0.01", slack=slack)
    assert result.series_dominates("lambda=0.01", "lambda=0.1", slack=slack)
    assert result.series_dominates("lambda=0.1", "lambda=5", slack=slack)
    # RMSE grows with m for the consistent-regime series; the lambda=5
    # series is already near its collapse plateau and is nearly flat in m
    # (as in the paper's Figure 4), so it is only required not to fall.
    for label in ("lambda=0", "lambda=0.01", "lambda=0.1"):
        assert result.series_trend(label) > 0
    assert result.series_trend("lambda=5") > -1e-5
