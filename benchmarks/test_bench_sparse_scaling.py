"""Bench: the sparse-native fast path against the dense route.

Two axes at N in {500, 2000, 8000}:

* graph construction — dense O(N^2) route vs kd-tree neighbor route,
  with the memory proxy nnz * 8 bytes vs N^2 * 8 bytes;
* the hard-criterion solve — dense Cholesky on the densified graph vs
  the sparse factorization on the CSR graph.

The dense legs are skipped above ``DENSE_CAP`` at quick scale (an 8000^2
float64 matrix alone is ~512 MB); set ``REPRO_BENCH_SCALE=paper`` to run
them everywhere.  At N=8000 the neighbor construction additionally runs
under ``tracemalloc`` and must stay far below the dense graph's
footprint — the acceptance guard that no ``(N, N)`` array is allocated.
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np

from conftest import SCALE, publish

from repro.core.hard import solve_hard_criterion
from repro.experiments.report import ascii_table
from repro.graph.similarity import knn_graph

SIZES = (500, 2000, 8000)
K = 10
DENSE_CAP = 2000 if SCALE == "quick" else 8000


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


def _run_sparse_scaling():
    rng = np.random.default_rng(0)
    rows = []
    guard_peak = None
    for n in SIZES:
        x = rng.normal(size=(n, 2))
        n_labeled = max(20, n // 20)
        y = np.sin(x[:n_labeled, 0])

        if n <= DENSE_CAP:
            graph_dense, t_dense_build = _timed(
                lambda: knn_graph(x, k=K, bandwidth=0.5, construction="dense")
            )
        else:
            graph_dense, t_dense_build = None, float("nan")

        if n == max(SIZES):
            tracemalloc.start()
            graph_neigh, t_neigh_build = _timed(
                lambda: knn_graph(x, k=K, bandwidth=0.5, construction="neighbors")
            )
            _, guard_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        else:
            graph_neigh, t_neigh_build = _timed(
                lambda: knn_graph(x, k=K, bandwidth=0.5, construction="neighbors")
            )

        nnz = graph_neigh.weights.nnz
        dense_mb = n * n * 8 / 1e6
        sparse_mb = nnz * 8 / 1e6

        if n <= DENSE_CAP:
            _, t_dense_solve = _timed(
                lambda: solve_hard_criterion(graph_dense.dense_weights(), y)
            )
        else:
            t_dense_solve = float("nan")
        _, t_sparse_solve = _timed(
            lambda: solve_hard_criterion(graph_neigh.weights, y)
        )

        rows.append(
            [
                n,
                f"{t_dense_build * 1e3:.1f}" if t_dense_build == t_dense_build else "skipped",
                f"{t_neigh_build * 1e3:.1f}",
                f"{t_dense_solve * 1e3:.1f}" if t_dense_solve == t_dense_solve else "skipped",
                f"{t_sparse_solve * 1e3:.1f}",
                nnz,
                f"{sparse_mb:.2f}",
                f"{dense_mb:.1f}",
            ]
        )

    return rows, guard_peak


def test_bench_sparse_scaling(bench, results_dir):
    # profile=False: this bench manages tracemalloc itself for the
    # neighbor-route guard, so the recorder must not start a second trace.
    (rows, guard_peak), record = bench.measure(
        "sparse_scaling", _run_sparse_scaling, repeats=1, profile=False
    )

    table = ascii_table(
        [
            "N",
            "build dense (ms)",
            "build neighbors (ms)",
            "solve dense (ms)",
            "solve sparse (ms)",
            "nnz",
            "sparse MB",
            "dense MB",
        ],
        rows,
    )
    summary = (
        "sparse-native fast path: construction + hard solve scaling\n"
        f"{table}\n"
        f"neighbor-route peak at N={max(SIZES)}: "
        f"{(guard_peak or 0) / 1e6:.1f} MB traced "
        f"(dense graph would be {max(SIZES) ** 2 * 8 / 1e6:.0f} MB)"
    )
    publish(results_dir, "sparse_scaling", summary, record=record)

    # Acceptance guard: the neighbor route's traced allocations stay far
    # below one (N, N) float64 matrix.
    n_max = max(SIZES)
    assert guard_peak is not None
    assert guard_peak < n_max * n_max * 8 / 4

    # The sparse graph is a vanishing fraction of the dense footprint.
    last_nnz = rows[-1][5]
    assert last_nnz * 8 < 0.05 * n_max * n_max * 8
