"""Bench: replicate fan-out speedup vs worker count.

Times the Figure-1 style workload (synthetic dataset -> full kernel graph
-> soft-criterion solves over a lambda grid) at 100 replicates for
``n_jobs`` in {1, 2, 4}, through ``run_replicates``'s process-pool path.
Two things are measured and published:

* wall-clock and speedup per worker count — each timing lands in the
  session :class:`~repro.obs.bench.BenchRecorder`, so the regression gate
  tracks parallel overhead alongside everything else;
* a parity check that the parallel aggregates are *bit-identical* to the
  serial ones (the executor's determinism contract, asserted here on the
  real workload, not a toy).

The speedup acceptance (>= 1.5x at n_jobs=4) only fires on machines with
at least 4 CPUs — on smaller boxes (CI runners, containers) the numbers
are recorded informationally, since a 1-core host cannot physically show
a parallel win.
"""

from __future__ import annotations

import os
from functools import partial

from conftest import REPEATS, replicates, publish

from repro.experiments.report import ascii_table
from repro.experiments.runner import run_replicates
from repro.experiments.synthetic_sweep import synthetic_replicate_rmse

JOB_COUNTS = (1, 2, 4)
LAMBDAS = (0.0, 0.1, 1.0)

REPLICATE = partial(
    synthetic_replicate_rmse,
    n_labeled=120,
    n_unlabeled=30,
    model="model1",
    lambdas=LAMBDAS,
)


def _run_workload(n_replicates: int, n_jobs: int):
    return run_replicates(
        REPLICATE, n_replicates=n_replicates, seed=2024, n_jobs=n_jobs
    )


def test_bench_parallel_scaling(bench, results_dir):
    n_replicates = replicates(quick=100, paper=300)

    timings = {}
    summaries = {}
    for n_jobs in JOB_COUNTS:
        summary, record = bench.measure(
            f"parallel_replicates_jobs{n_jobs}",
            lambda n_jobs=n_jobs: _run_workload(n_replicates, n_jobs),
            repeats=REPEATS,
        )
        timings[n_jobs] = record.min_s
        summaries[n_jobs] = summary

    serial_seconds = timings[1]
    rows = []
    for n_jobs in JOB_COUNTS:
        speedup = serial_seconds / timings[n_jobs]
        rows.append([n_jobs, f"{timings[n_jobs]:.3f}", f"{speedup:.2f}x"])

    table = ascii_table(["n_jobs", "min seconds", "speedup"], rows)
    text = (
        f"parallel replicate scaling: {n_replicates} replicates, "
        f"{len(LAMBDAS)} lambdas, n=120/m=30 ({os.cpu_count()} CPUs)\n"
        f"{table}"
    )
    publish(results_dir, "parallel_scaling", text)

    # Determinism contract on the real workload: every worker count
    # produces the same numbers, down to the raw per-replicate values.
    for n_jobs in JOB_COUNTS[1:]:
        assert summaries[n_jobs] == summaries[1]

    # The speedup acceptance needs physical parallelism to exist.
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        assert serial_seconds / timings[4] >= 1.5
