"""Benches: the design-choice ablations DESIGN.md calls out.

Each ablation swaps one axis of the Figure-1 workload (hard criterion,
Model 1) and reports RMSE per variant; the solver ablation reports
agreement and wall-clock per backend.
"""

import numpy as np
from conftest import publish, replicates

from repro.experiments.ablations import (
    run_bandwidth_ablation,
    run_graph_ablation,
    run_kernel_ablation,
    run_solver_ablation,
)
from repro.experiments.report import ascii_table, format_sweep_result


def test_bench_ablation_kernels(bench, results_dir):
    result, record = bench.measure(
        "ablation_kernels",
        lambda: run_kernel_ablation(
            n_labeled=200, n_unlabeled=30,
            n_replicates=replicates(20, 200), seed=0,
        ),
        repeats=1,
    )
    publish(
        results_dir, "ablation_kernels", format_sweep_result(result), record=record
    )
    # No kernel family should be degenerate (more than 2x the best RMSE).
    best = result.means.min()
    assert result.means.max() < 2.0 * best


def test_bench_ablation_bandwidth(bench, results_dir):
    result, record = bench.measure(
        "ablation_bandwidth",
        lambda: run_bandwidth_ablation(
            n_labeled=200, n_unlabeled=30,
            n_replicates=replicates(20, 200), seed=1,
        ),
        repeats=1,
    )
    publish(
        results_dir, "ablation_bandwidth", format_sweep_result(result), record=record
    )
    assert np.all(result.means > 0)


def test_bench_ablation_graph(bench, results_dir):
    result, record = bench.measure(
        "ablation_graph",
        lambda: run_graph_ablation(
            n_labeled=200, n_unlabeled=30, knn_k=25,
            n_replicates=replicates(20, 200), seed=2,
        ),
        repeats=1,
    )
    publish(results_dir, "ablation_graph", format_sweep_result(result), record=record)
    # Sparsifiers trade accuracy for speed but must stay in the ballpark.
    full = result.series("rmse")[result.x_values.index("full")]
    assert np.all(result.means < 2.0 * full)


def test_bench_ablation_solvers(bench, results_dir):
    result, record = bench.measure(
        "ablation_solvers",
        lambda: run_solver_ablation(n_labeled=400, n_unlabeled=150, repeats=3, seed=0),
        repeats=1,
    )
    table = ascii_table(result.headers(), result.to_rows())
    publish(
        results_dir,
        "ablation_solvers",
        "Solver ablation (hard criterion)\n" + table,
        record=record,
    )
    assert all(dev < 1e-6 for dev in result.max_deviation)
