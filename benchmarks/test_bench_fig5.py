"""Bench: regenerate Figure 5 (AUC vs lambda on COIL-like data).

Reproduction criteria (shape-level):

* the hard criterion (lambda = 0) attains the best AUC in every
  labeled-ratio setting;
* AUC decreases (weakly) along the lambda grid in every setting;
* at lambda = 0, AUC is ordered by the labeled fraction:
  80/20 > 20/80 > 10/90.

Dataset note: this uses the procedural COIL-like substitute documented
in DESIGN.md; absolute AUC levels differ from the paper's (~0.62 here
vs ~0.71 there) but the orderings — which are what the paper's Figure 5
demonstrates — hold.
"""

import numpy as np
from conftest import SCALE, publish, replicates

from repro.datasets.coil import make_coil_like
from repro.experiments.figures import run_figure5
from repro.experiments.report import format_sweep_result, write_csv


def test_bench_figure5(bench, results_dir):
    images_per_class = 250 if SCALE == "paper" else 150

    def run():
        dataset = make_coil_like(images_per_class=images_per_class, seed=7)
        return run_figure5(
            dataset=dataset, repeats=replicates(3, 100), seed=2
        )

    result, record = bench.measure("figure5", run, repeats=1)
    publish(results_dir, "figure5", format_sweep_result(result), record=record)
    write_csv(results_dir / "figure5.csv", result.headers(), result.to_rows())

    lam0 = result.means[:, 0]
    # Hard criterion best within each setting (weak-monotone in lambda).
    slack = 0.005
    for s in range(len(result.series_labels)):
        series = result.means[s]
        assert np.all(series[0] >= series - slack)
        assert series[0] >= series[-1]
    # Labeled-ratio ordering at lambda = 0.
    assert lam0[0] > lam0[1] > lam0[2]
