"""Bench: Section III's toy example — closed forms vs the production solver."""

from conftest import REPEATS, publish

from repro.experiments.figures import run_toy_example
from repro.experiments.report import ascii_table


def test_bench_toy_example(bench, results_dir):
    result, record = bench.measure(
        "toy_example",
        lambda: run_toy_example(
            grid=((5, 3), (20, 7), (50, 50), (10, 40), (200, 100)), seed=0
        ),
        repeats=REPEATS,
    )
    table = ascii_table(
        ["check", "max deviation"],
        [
            ["scores vs labeled mean", result.max_score_deviation],
            ["(D22-W22)^-1 vs paper formula", result.max_inverse_deviation],
        ],
    )
    publish(
        results_dir, "toy_example", "Section III toy example\n" + table, record=record
    )
    assert result.ok
