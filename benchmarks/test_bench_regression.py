"""Bench: the theorem's *regression case* (continuous bounded responses).

Theorem II.1 only requires bounded Y, so it covers regression as well as
classification.  Criteria: the hard criterion's RMSE against the true
regression function falls with n, the lambda ordering matches the
classification figures, and the hard criterion tracks Nadaraya-Watson.
"""

import numpy as np
from conftest import publish, replicates

from repro.core.nadaraya_watson import nadaraya_watson_from_weights
from repro.core.soft import solve_soft_criterion
from repro.datasets.synthetic import make_regression_dataset
from repro.experiments.report import ascii_table
from repro.experiments.runner import run_replicates
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.metrics.regression import root_mean_squared_error


def test_bench_regression_consistency(bench, results_dir):
    n_values = (50, 100, 200, 400, 800)
    lambdas = (0.0, 0.1, 5.0)
    reps = replicates(20, 200)

    def run():
        rows = []
        for j, n in enumerate(n_values):
            def replicate(rng, n=n):
                data = make_regression_dataset(n, 20, noise_std=0.1, seed=rng)
                bandwidth = paper_bandwidth_rule(n, 5)
                graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
                out = {}
                for lam in lambdas:
                    fit = solve_soft_criterion(
                        graph.weights, data.y_labeled, lam,
                        check_reachability=False,
                    )
                    out[f"lambda={lam:g}"] = root_mean_squared_error(
                        data.q_unlabeled, fit.unlabeled_scores
                    )
                nw = nadaraya_watson_from_weights(graph.weights, data.y_labeled)
                out["nw"] = root_mean_squared_error(data.q_unlabeled, nw)
                return out

            summary = run_replicates(replicate, n_replicates=reps, seed=j)
            rows.append(
                [n]
                + [summary.means[f"lambda={lam:g}"] for lam in lambdas]
                + [summary.means["nw"]]
            )
        return rows

    rows, record = bench.measure("regression_consistency", run, repeats=1)
    headers = ["n"] + [f"lambda={lam:g}" for lam in lambdas] + ["nadaraya-watson"]
    publish(
        results_dir,
        "regression_consistency",
        "Regression case (continuous bounded Y)\n" + ascii_table(headers, rows),
        record=record,
    )

    table = np.asarray(rows, dtype=np.float64)
    hard = table[:, 1]
    mid = table[:, 2]
    collapsed = table[:, 3]
    nw = table[:, 4]
    # Consistency: hard RMSE falls with n.
    assert hard[-1] < hard[0]
    # Lambda ordering at the largest n.
    assert hard[-1] < mid[-1] < collapsed[-1]
    # Hard shadows NW (the proof's mechanism) within 20%.
    assert abs(hard[-1] - nw[-1]) < 0.2 * nw[-1]
