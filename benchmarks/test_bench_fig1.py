"""Bench: regenerate Figure 1 (RMSE vs n, Model 1, m = 30).

Reproduction criteria (shape-level, per the paper):

* the hard criterion (lambda = 0) has the lowest RMSE at every n;
* RMSE is ordered by lambda at every n;
* every series trends downward in n.
"""

from conftest import publish, replicates

from repro.experiments.figures import run_figure1
from repro.experiments.report import format_sweep_result, write_csv


def test_bench_figure1(bench, results_dir):
    result, record = bench.measure(
        "figure1",
        lambda: run_figure1(n_replicates=replicates(25, 1000), seed=1),
        repeats=1,
    )
    publish(results_dir, "figure1", format_sweep_result(result), record=record)
    write_csv(results_dir / "figure1.csv", result.headers(), result.to_rows())

    slack = 0.01  # replicate noise allowance
    assert result.series_dominates("lambda=0", "lambda=0.01", slack=slack)
    assert result.series_dominates("lambda=0.01", "lambda=0.1", slack=slack)
    assert result.series_dominates("lambda=0.1", "lambda=5", slack=slack)
    for label in result.series_labels:
        assert result.series_trend(label) < 0  # RMSE falls as n grows
