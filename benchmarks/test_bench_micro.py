"""Micro-benchmarks of the core computational kernels.

These use pytest-benchmark's statistics machinery properly (multiple
rounds) so solver/graph-construction regressions are visible in the
benchmark table, complementing the figure benches above.
"""

import pytest

from repro.core.hard import solve_hard_criterion
from repro.core.propagation import propagate_labels
from repro.core.soft import solve_soft_criterion
from repro.datasets.synthetic import make_synthetic_dataset
from repro.graph.similarity import full_kernel_graph, knn_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.kernels.library import GaussianKernel


@pytest.fixture(scope="module")
def workload():
    """A fixed mid-size problem shared by all micro-benchmarks."""
    data = make_synthetic_dataset(400, 100, seed=0)
    bandwidth = paper_bandwidth_rule(400, 5)
    weights = full_kernel_graph(data.x_all, bandwidth=bandwidth).dense_weights()
    return data, weights, bandwidth


def test_bench_gram_matrix(benchmark, workload):
    data, _, bandwidth = workload
    benchmark(lambda: GaussianKernel().gram(data.x_all, bandwidth=bandwidth))


def test_bench_knn_graph(benchmark, workload):
    data, _, bandwidth = workload
    benchmark(lambda: knn_graph(data.x_all, k=15, bandwidth=bandwidth))


def test_bench_hard_direct(benchmark, workload):
    data, weights, _ = workload
    benchmark(
        lambda: solve_hard_criterion(
            weights, data.y_labeled, method="direct", check_reachability=False
        )
    )


def test_bench_hard_cg(benchmark, workload):
    data, weights, _ = workload
    benchmark(
        lambda: solve_hard_criterion(
            weights, data.y_labeled, method="cg", tol=1e-10,
            check_reachability=False,
        )
    )


def test_bench_hard_propagation(benchmark, workload):
    data, weights, _ = workload
    benchmark(
        lambda: propagate_labels(
            weights, data.y_labeled, tol=1e-10, check_reachability=False
        )
    )


def test_bench_soft_schur(benchmark, workload):
    data, weights, _ = workload
    benchmark(
        lambda: solve_soft_criterion(
            weights, data.y_labeled, 0.1, method="schur", check_reachability=False
        )
    )


def test_bench_soft_full(benchmark, workload):
    data, weights, _ = workload
    benchmark(
        lambda: solve_soft_criterion(
            weights, data.y_labeled, 0.1, method="full", check_reachability=False
        )
    )
