"""Micro-benchmarks of the core computational kernels.

These use pytest-benchmark's statistics machinery properly (multiple
rounds) so solver/graph-construction regressions are visible in the
benchmark table, complementing the figure benches above.  Each test also
imports its calibrated stats into the session :class:`BenchRecorder`
(one extra profiled pass supplies memory and solver health), so the
micro kernels appear in the ``BENCH_<runid>.json`` trajectory with
enough repeats to gate ``bench-compare``.
"""

import pytest

from conftest import publish

from repro.core.hard import solve_hard_criterion
from repro.core.propagation import propagate_labels
from repro.core.soft import solve_soft_criterion
from repro.datasets.synthetic import make_synthetic_dataset
from repro.graph.similarity import full_kernel_graph, knn_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.kernels.library import GaussianKernel


@pytest.fixture(scope="module")
def workload():
    """A fixed mid-size problem shared by all micro-benchmarks."""
    data = make_synthetic_dataset(400, 100, seed=0)
    bandwidth = paper_bandwidth_rule(400, 5)
    weights = full_kernel_graph(data.x_all, bandwidth=bandwidth).dense_weights()
    return data, weights, bandwidth


def _capture(benchmark, bench, results_dir, name, fn):
    benchmark(fn)
    record = bench.from_pytest_benchmark(name, benchmark.stats.stats, fn)
    publish(results_dir, name, record.summary(), record=record)


def test_bench_gram_matrix(benchmark, bench, results_dir, workload):
    data, _, bandwidth = workload
    _capture(
        benchmark, bench, results_dir, "micro_gram_matrix",
        lambda: GaussianKernel().gram(data.x_all, bandwidth=bandwidth),
    )


def test_bench_knn_graph(benchmark, bench, results_dir, workload):
    data, _, bandwidth = workload
    _capture(
        benchmark, bench, results_dir, "micro_knn_graph",
        lambda: knn_graph(data.x_all, k=15, bandwidth=bandwidth),
    )


def test_bench_hard_direct(benchmark, bench, results_dir, workload):
    data, weights, _ = workload
    _capture(
        benchmark, bench, results_dir, "micro_hard_direct",
        lambda: solve_hard_criterion(
            weights, data.y_labeled, method="direct", check_reachability=False
        ),
    )


def test_bench_hard_cg(benchmark, bench, results_dir, workload):
    data, weights, _ = workload
    _capture(
        benchmark, bench, results_dir, "micro_hard_cg",
        lambda: solve_hard_criterion(
            weights, data.y_labeled, method="cg", tol=1e-10,
            check_reachability=False,
        ),
    )


def test_bench_hard_propagation(benchmark, bench, results_dir, workload):
    data, weights, _ = workload
    _capture(
        benchmark, bench, results_dir, "micro_hard_propagation",
        lambda: propagate_labels(
            weights, data.y_labeled, tol=1e-10, check_reachability=False
        ),
    )


def test_bench_soft_schur(benchmark, bench, results_dir, workload):
    data, weights, _ = workload
    _capture(
        benchmark, bench, results_dir, "micro_soft_schur",
        lambda: solve_soft_criterion(
            weights, data.y_labeled, 0.1, method="schur", check_reachability=False
        ),
    )


def test_bench_soft_full(benchmark, bench, results_dir, workload):
    data, weights, _ = workload
    _capture(
        benchmark, bench, results_dir, "micro_soft_full",
        lambda: solve_soft_criterion(
            weights, data.y_labeled, 0.1, method="full", check_reachability=False
        ),
    )
