"""Bench: isotonic calibration dissects the soft criterion's failure.

The metric study showed the soft criterion's AUC barely moves with
lambda while MCC/accuracy collapse — i.e. smoothing destroys
*calibration*, not *ranking*.  If that diagnosis is right, a monotone
recalibration (isotonic, fitted on the labeled scores) should repair
the threshold metrics at large lambda.  Criteria: it does — and the
hard criterion still needs no such repair (its threshold accuracy is
within noise of its calibrated version).
"""

from conftest import publish, replicates

from repro.core.hard import solve_hard_criterion
from repro.core.soft import solve_soft_criterion
from repro.datasets.synthetic import make_synthetic_dataset
from repro.experiments.report import ascii_table
from repro.experiments.runner import run_replicates
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.metrics.classification import accuracy, matthews_corrcoef
from repro.metrics.isotonic import IsotonicCalibrator


def test_bench_calibration_repair(bench, results_dir):
    reps = replicates(20, 200)
    lam = 5.0

    def run():
        def replicate(rng):
            data = make_synthetic_dataset(200, 100, seed=rng)
            bandwidth = paper_bandwidth_rule(200, 5)
            graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
            hidden = data.y_unlabeled
            out = {}

            soft = solve_soft_criterion(
                graph.weights, data.y_labeled, lam, check_reachability=False
            )
            raw_predictions = (soft.unlabeled_scores >= 0.5).astype(float)
            out["soft_raw_acc"] = accuracy(hidden, raw_predictions)
            out["soft_raw_mcc"] = matthews_corrcoef(hidden, raw_predictions)

            calibrator = IsotonicCalibrator().fit(
                soft.labeled_scores, data.y_labeled
            )
            calibrated = calibrator.transform(soft.unlabeled_scores)
            fixed_predictions = (calibrated >= 0.5).astype(float)
            out["soft_cal_acc"] = accuracy(hidden, fixed_predictions)
            out["soft_cal_mcc"] = matthews_corrcoef(hidden, fixed_predictions)

            hard = solve_hard_criterion(
                graph.weights, data.y_labeled, check_reachability=False
            )
            hard_predictions = (hard.unlabeled_scores >= 0.5).astype(float)
            out["hard_acc"] = accuracy(hidden, hard_predictions)
            out["hard_mcc"] = matthews_corrcoef(hidden, hard_predictions)
            return out

        return run_replicates(replicate, n_replicates=reps, seed=0)

    summary, record = bench.measure("calibration_repair", run, repeats=1)
    rows = [
        ["soft (lambda=5), raw 0.5 threshold", summary.means["soft_raw_acc"], summary.means["soft_raw_mcc"]],
        ["soft (lambda=5), isotonic-calibrated", summary.means["soft_cal_acc"], summary.means["soft_cal_mcc"]],
        ["hard (lambda=0), raw 0.5 threshold", summary.means["hard_acc"], summary.means["hard_mcc"]],
    ]
    publish(
        results_dir,
        "calibration_repair",
        "Isotonic calibration repair at lambda=5\n"
        + ascii_table(["method", "accuracy", "MCC"], rows),
        record=record,
    )
    # Calibration substantially repairs the soft criterion's thresholds.
    assert summary.means["soft_cal_acc"] > summary.means["soft_raw_acc"] + 0.1
    assert summary.means["soft_cal_mcc"] > summary.means["soft_raw_mcc"] + 0.1
    # The hard criterion never needed the repair.
    assert summary.means["hard_acc"] >= summary.means["soft_cal_acc"] - 0.02
