"""Bench: method shootout — every family in the library, two workloads.

Workload A (the paper's synthetic DGP, flat graph): the hard criterion
and Nadaraya-Watson should lead; eigenbasis struggles (its informative-
eigenvector premise fails); the constant mean is the floor.

Workload B (two moons, manifold structure, scarce labels): the graph
methods exploit unlabeled data and beat the supervised baselines.
"""

import numpy as np
from conftest import publish, replicates

from repro.core.baselines import KNNClassifier, KNNRegressor, MeanPredictor
from repro.core.eigenbasis import solve_eigenbasis
from repro.core.hard import solve_hard_criterion
from repro.core.nadaraya_watson import nadaraya_watson
from repro.core.propagation import local_global_consistency
from repro.core.soft import solve_soft_criterion
from repro.datasets.synthetic import make_synthetic_dataset
from repro.datasets.toy import two_moons
from repro.experiments.report import ascii_table
from repro.experiments.runner import run_replicates
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.metrics.classification import accuracy
from repro.metrics.regression import root_mean_squared_error
from repro.utils.rng import spawn_rngs


def test_bench_baselines_synthetic(bench, results_dir):
    reps = replicates(25, 200)

    def run():
        def replicate(rng):
            data = make_synthetic_dataset(150, 30, seed=rng)
            bandwidth = paper_bandwidth_rule(150, 5)
            graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
            weights = graph.dense_weights()
            out = {}
            hard = solve_hard_criterion(weights, data.y_labeled, check_reachability=False)
            out["hard"] = root_mean_squared_error(data.q_unlabeled, hard.unlabeled_scores)
            soft = solve_soft_criterion(weights, data.y_labeled, 0.1, check_reachability=False)
            out["soft(0.1)"] = root_mean_squared_error(data.q_unlabeled, soft.unlabeled_scores)
            nw = nadaraya_watson(
                data.x_labeled, data.y_labeled, data.x_unlabeled, bandwidth=bandwidth
            )
            out["nadaraya-watson"] = root_mean_squared_error(data.q_unlabeled, nw)
            lgc = local_global_consistency(weights, data.y_labeled, alpha=0.9)
            out["lgc(0.9)"] = root_mean_squared_error(
                data.q_unlabeled, lgc.scores[150:]
            )
            eig = solve_eigenbasis(weights, data.y_labeled, n_components=5, ridge=1e-2)
            out["eigenbasis(5)"] = root_mean_squared_error(
                data.q_unlabeled, eig.unlabeled_scores
            )
            knn = KNNRegressor(k=15).fit(data.x_labeled, data.y_labeled)
            out["knn(15)"] = root_mean_squared_error(
                data.q_unlabeled, knn.predict(data.x_unlabeled)
            )
            mean = MeanPredictor().fit(data.x_labeled, data.y_labeled)
            out["mean"] = root_mean_squared_error(
                data.q_unlabeled, mean.predict(data.x_unlabeled)
            )
            return out

        return run_replicates(replicate, n_replicates=reps, seed=0)

    summary, record = bench.measure("baselines_synthetic", run, repeats=1)
    order = sorted(summary.means, key=summary.means.get)
    rows = [[name, summary.means[name]] for name in order]
    publish(
        results_dir,
        "baselines_synthetic",
        "Method shootout - paper's synthetic DGP (mean RMSE vs true q)\n"
        + ascii_table(["method", "rmse"], rows),
        record=record,
    )
    # The paper's headline survives a full field: hard beats soft and
    # the mean floor; NW and hard are close (the consistency link).
    assert summary.means["hard"] < summary.means["soft(0.1)"]
    assert summary.means["hard"] < summary.means["mean"]
    assert abs(summary.means["hard"] - summary.means["nadaraya-watson"]) < 0.03


def test_bench_baselines_two_moons(bench, results_dir):
    n_runs = replicates(10, 50)

    def run():
        accumulator = {}
        for rng in spawn_rngs(1, n_runs):
            x, y = two_moons(300, noise=0.07, seed=rng)
            labeled_idx = np.concatenate(
                [np.flatnonzero(y == 0.0)[:5], np.flatnonzero(y == 1.0)[:5]]
            )
            rest = np.setdiff1d(np.arange(300), labeled_idx)
            order = np.concatenate([labeled_idx, rest])
            weights = full_kernel_graph(x[order], bandwidth=0.25).dense_weights()
            y_lab, y_hidden = y[labeled_idx], y[rest]

            hard = solve_hard_criterion(weights, y_lab, check_reachability=False)
            accumulator.setdefault("hard", []).append(
                accuracy(y_hidden, (hard.unlabeled_scores >= 0.5).astype(float))
            )
            lgc = local_global_consistency(weights, y_lab, alpha=0.95)
            scores = lgc.scores[10:]
            accumulator.setdefault("lgc(0.95)", []).append(
                accuracy(y_hidden, (scores >= np.median(scores)).astype(float))
            )
            eig = solve_eigenbasis(weights, y_lab, n_components=5)
            accumulator.setdefault("eigenbasis(5)", []).append(
                accuracy(y_hidden, (eig.unlabeled_scores >= 0.5).astype(float))
            )
            knn = KNNClassifier(k=3).fit(x[labeled_idx], y_lab)
            accumulator.setdefault("knn(3)", []).append(
                accuracy(y_hidden, knn.predict(x[rest]))
            )
        return {name: float(np.mean(vals)) for name, vals in accumulator.items()}

    means, record = bench.measure("baselines_two_moons", run, repeats=1)
    rows = [[name, value] for name, value in sorted(means.items(), key=lambda kv: -kv[1])]
    publish(
        results_dir,
        "baselines_two_moons",
        "Method shootout - two moons, 10 labels (mean accuracy)\n"
        + ascii_table(["method", "accuracy"], rows),
        record=record,
    )
    # Manifold structure: every graph method beats the supervised kNN.
    assert means["hard"] > means["knn(3)"]
    assert means["eigenbasis(5)"] > means["knn(3)"]
