"""Shared benchmark configuration.

Every figure bench regenerates its paper artifact at a reduced replicate
count by default (so the whole harness runs in minutes on a laptop) and
at the paper's full scale when ``REPRO_BENCH_SCALE=paper`` is set.  Each
bench prints the regenerated series and writes it under
``benchmarks/results/`` so the numbers survive pytest's output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: "quick" (default) or "paper" (the paper's replicate counts; slow).
SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


def replicates(quick: int, paper: int) -> int:
    """Pick the replicate count for the active scale."""
    return paper if SCALE == "paper" else quick


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: Path, name: str, text: str) -> None:
    """Print a regenerated artifact and persist it to the results dir."""
    print(f"\n{text}\n")
    (results_dir / f"{name}.txt").write_text(text + "\n")
