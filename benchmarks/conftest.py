"""Shared benchmark configuration.

Every figure bench regenerates its paper artifact at a reduced replicate
count by default (so the whole harness runs in minutes on a laptop) and
at the paper's full scale when ``REPRO_BENCH_SCALE=paper`` is set.  Each
bench publishes two artifacts under ``benchmarks/results/``: the
human-readable ``.txt`` table it always produced, and a JSON *twin* — a
``repro.obs.bench.BenchRecord`` with timings, tracemalloc peak memory,
solver health, and the environment fingerprint (see
``docs/BENCHMARKING.md``).  At session end the recorder writes the
machine-readable trajectory ``BENCH_<runid>.json`` into
``benchmarks/results/``; ``python -m repro bench-compare OLD.json
NEW.json`` turns two or more of those into a perf regression gate, and
``python -m repro obs ingest benchmarks/results/BENCH_*.json`` folds
them into the run ledger for ``obs history`` / ``obs trend``.

Fast benches time ``REPRO_BENCH_REPEATS`` passes (default 3) so the
regression gate has real minima to compare; heavy figure regenerations
pass ``repeats=1`` and are reported informationally only (the compare's
minimum-repeat rule exempts them from gating).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.obs.bench import BenchRecorder, prune_bench_runs

RESULTS_DIR = Path(__file__).parent / "results"

#: "quick" (default) or "paper" (the paper's replicate counts; slow).
SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")

#: Timing repeats for fast benches (heavy ones pass repeats=1 explicitly).
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))

#: Trajectory retention: after each session the results directory keeps
#: the newest ``KEEP_RUNS`` trajectories per benchmark id and deletes
#: ``BENCH_*.json`` files fully superseded by newer runs (0 disables).
KEEP_RUNS = int(os.environ.get("REPRO_BENCH_KEEP_RUNS", "3"))


def replicates(quick: int, paper: int) -> int:
    """Pick the replicate count for the active scale."""
    return paper if SCALE == "paper" else quick


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench():
    """Session-wide :class:`BenchRecorder`; writes the trajectory at exit."""
    recorder = BenchRecorder(scale=SCALE)
    yield recorder
    if recorder.records:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = recorder.write_run(RESULTS_DIR)
        print(f"\nwrote bench trajectory: {path} ({len(recorder)} records)")
        if KEEP_RUNS > 0:
            pruned = prune_bench_runs(RESULTS_DIR, keep=KEEP_RUNS)
            if pruned:
                print(
                    f"pruned {len(pruned)} superseded bench trajectories "
                    f"(keeping {KEEP_RUNS} runs per benchmark)"
                )


def publish(results_dir: Path, name: str, text: str, record=None) -> None:
    """Print a regenerated artifact and persist it to the results dir.

    With a :class:`~repro.obs.bench.BenchRecord`, also writes the
    machine-readable JSON twin next to the ``.txt``.
    """
    print(f"\n{text}\n")
    (results_dir / f"{name}.txt").write_text(text + "\n")
    if record is not None:
        record.write_json(results_dir / f"{name}.json")
