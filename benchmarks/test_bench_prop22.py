"""Bench: Proposition II.2 — the soft criterion collapses to the constant
labeled-mean prediction as lambda -> inf, and its RMSE stays bounded away
from the hard criterion's (the inconsistency gap)."""

from conftest import REPEATS, publish

from repro.experiments.figures import run_prop22_experiment
from repro.experiments.report import ascii_table


def test_bench_prop22(bench, results_dir):
    result, record = bench.measure(
        "prop22",
        lambda: run_prop22_experiment(n_labeled=300, n_unlabeled=60, seed=0),
        repeats=REPEATS,
    )
    rows = [
        [f"{lam:.0e}", dist, err]
        for lam, dist, err in zip(
            result.lambdas, result.distance_to_mean, result.rmse
        )
    ]
    table = ascii_table(result.headers(), rows)
    summary = (
        "Proposition II.2 (lambda -> inf limit)\n"
        f"{table}\n"
        f"hard-criterion RMSE: {result.hard_rmse:.4f}; "
        f"inconsistency gap at max lambda: {result.inconsistency_gap:.4f}"
    )
    publish(results_dir, "prop22", summary, record=record)

    assert result.collapses_to_mean
    assert result.inconsistency_gap > 0.01
    # Distance to the mean vector is monotone decreasing in lambda.
    dists = result.distance_to_mean
    assert all(b <= a for a, b in zip(dists, dists[1:]))
