"""Bench: amortized λ-sweeps against per-point direct solves.

A 30-point logarithmic λ-grid (1e-3 .. 1e2) over a sparse kNN graph at
N in {1000, 4000}, solved three ways:

* **direct** — the historical hot path: one ``solve_soft_criterion``
  per grid point, reassembling and refactorizing every time;
* **factored** — one ``SolveWorkspace`` per sweep: anchor factorization
  plus warm-started preconditioned-CG continuation across the grid;
* **spectral** — one truncated eigendecomposition, then a ``k×k``
  Galerkin solve per grid point.

Workspaces are constructed *inside* the timed region, so every sample
pays the full cost of the first factorization / eigenbasis — the
speedup reported is what a cold sweep actually sees.  The acceptance
guard asserts the factored sweep is at least 3x faster than direct at
N=4000, and that its answers match direct solves at the sweep's ends.
"""

from __future__ import annotations

import numpy as np

from conftest import REPEATS, publish

from repro.core.soft import solve_soft_criterion
from repro.experiments.report import ascii_table
from repro.graph.similarity import knn_graph
from repro.linalg.workspace import SolveWorkspace

SIZES = (1000, 4000)
K = 10
GRID = tuple(float(lam) for lam in np.logspace(-3, 2, 30))

#: Acceptance floor for the factored sweep at the largest N.
MIN_FACTORED_SPEEDUP = 3.0


def _make_problem(n: int):
    rng = np.random.default_rng(n)
    x = rng.normal(size=(n, 2))
    n_labeled = n // 20
    y = np.sin(x[:n_labeled, 0]) + 0.1 * rng.normal(size=n_labeled)
    graph = knn_graph(x, k=K, bandwidth=0.5, construction="neighbors")
    return graph.weights, y


def _sweep_direct(weights, y):
    return [
        solve_soft_criterion(weights, y, lam, check_reachability=False).scores
        for lam in GRID
    ]


def _sweep_workspace(weights, y, backend):
    workspace = SolveWorkspace(weights, backend=backend)
    fits = workspace.sweep_soft(y, GRID)
    return [fit.scores for fit in fits], workspace.stats()


def test_bench_lambda_sweep(bench, results_dir):
    rows = []
    speedups = {}
    for n in SIZES:
        weights, y = _make_problem(n)

        direct, rec_direct = bench.measure(
            f"lambda_sweep_direct_n{n}",
            lambda: _sweep_direct(weights, y),
            repeats=REPEATS,
        )
        factored, rec_factored = bench.measure(
            f"lambda_sweep_factored_n{n}",
            lambda: _sweep_workspace(weights, y, "factored"),
            repeats=REPEATS,
        )
        spectral, rec_spectral = bench.measure(
            f"lambda_sweep_spectral_n{n}",
            lambda: _sweep_workspace(weights, y, "spectral"),
            repeats=REPEATS,
        )

        factored_scores, stats = factored
        for rec in (rec_direct, rec_factored, rec_spectral):
            rec.write_json(results_dir / f"{rec.name}.json")
        speedups[n] = {
            "factored": rec_direct.min_s / rec_factored.min_s,
            "spectral": rec_direct.min_s / rec_spectral.min_s,
        }
        rows.append(
            [
                n,
                len(GRID),
                f"{rec_direct.min_s * 1e3:.1f}",
                f"{rec_factored.min_s * 1e3:.1f}",
                f"{rec_spectral.min_s * 1e3:.1f}",
                f"{speedups[n]['factored']:.2f}x",
                f"{speedups[n]['spectral']:.2f}x",
                stats.factor_misses,
                stats.reanchors,
            ]
        )

        # Continuation must not drift: the factored sweep agrees with the
        # per-point direct solves at both ends of the grid.
        np.testing.assert_allclose(
            factored_scores[0], direct[0], atol=1e-8, rtol=0
        )
        np.testing.assert_allclose(
            factored_scores[-1], direct[-1], atol=1e-8, rtol=0
        )

    table = ascii_table(
        [
            "N",
            "grid",
            "direct (ms)",
            "factored (ms)",
            "spectral (ms)",
            "factored speedup",
            "spectral speedup",
            "factorizations",
            "reanchors",
        ],
        rows,
    )
    summary = (
        "amortized lambda sweeps: 30-point log grid, kNN graph (k=10)\n"
        f"{table}\n"
        f"acceptance: factored >= {MIN_FACTORED_SPEEDUP:.0f}x at N={max(SIZES)}"
    )
    publish(results_dir, "lambda_sweep", summary)

    # Acceptance guard: cross-solve amortization pays for itself where it
    # matters — the factored sweep beats per-point solves >= 3x at the
    # largest size.
    assert speedups[max(SIZES)]["factored"] >= MIN_FACTORED_SPEEDUP
