"""Bench: serving throughput — single-query loop vs micro-batched server.

Fits one knn reference graph at N = 10,000 (the serving scale story:
per-query attachment is a kd-tree lookup, never an O(N^2) rebuild) and
serves the same fresh-query workload two ways:

* ``serving_single_query_n10000`` — a loop of one-point ``predict``
  calls: the per-request cost an unbatched caller pays (validation,
  span, extraction dispatch per query);
* ``serving_batched_n10000`` — the identical workload streamed through
  :class:`~repro.serving.server.ModelServer`, which amortizes all of
  that across ``BATCH_SIZE``-query flushes.

Both timings land in the session :class:`BenchRecorder` (so ``obs
trend`` gates them run-over-run) and in per-bench JSON twins next to the
``.txt`` table.  Acceptance: batched throughput must be at least 5x the
single-query path — batching is the serving layer's whole performance
thesis, so its erosion is a hard failure, not a trend note.

The determinism contract (batched == looped, bitwise) is asserted here
on the real N=10^4 workload too; see tests/test_serving_determinism.py
for the exhaustive small-scale matrix.
"""

from __future__ import annotations

import numpy as np
from conftest import REPEATS, publish

from repro.datasets.synthetic import make_regression_dataset, truncated_mvn_inputs
from repro.experiments.report import ascii_table
from repro.serving import GraphSSLModel, ModelServer

N_REFERENCE = 10_000
N_LABELED = 500
K_NEIGHBOURS = 10
BATCH_SIZE = 256
#: Full workload streamed through the server per timed pass.
N_QUERIES = 2048
#: Queries in the single-call loop per timed pass (kept modest so one
#: pass stays in seconds; qps normalizes the comparison).
N_SINGLE = 128

REQUIRED_SPEEDUP = 5.0


def test_bench_serving_throughput(bench, results_dir):
    rng = np.random.default_rng(42)
    data = make_regression_dataset(N_LABELED, N_REFERENCE - N_LABELED, seed=rng)
    queries = truncated_mvn_inputs(N_QUERIES, seed=rng)

    model = GraphSSLModel(graph="knn", graph_params={"k": K_NEIGHBOURS})
    _, fit_record = bench.measure(
        "serving_fit_n10000", lambda: model.fit(
            data.x_labeled, data.y_labeled, data.x_unlabeled
        ),
        repeats=1,
    )

    single_values, single_record = bench.measure(
        "serving_single_query_n10000",
        lambda: np.asarray(
            [
                model.predict(queries[i : i + 1])[0]
                for i in range(N_SINGLE)
            ]
        ),
        repeats=REPEATS,
    )

    def batched_pass() -> np.ndarray:
        server = ModelServer(model, max_batch_size=BATCH_SIZE)
        return server.predict_many(queries)

    batched_values, batched_record = bench.measure(
        "serving_batched_n10000", batched_pass, repeats=REPEATS
    )

    # Determinism at scale: the batched stream answers the loop's
    # queries with the loop's exact bits.
    assert np.array_equal(batched_values[:N_SINGLE], single_values)

    single_qps = N_SINGLE / single_record.min_s
    batched_qps = N_QUERIES / batched_record.min_s
    speedup = batched_qps / single_qps

    rows = [
        ["fit (once)", "-", f"{fit_record.min_s:.2f}s", "-"],
        ["single predict()", N_SINGLE, f"{single_qps:,.0f} q/s", "1.00x"],
        [
            f"batched (batch={BATCH_SIZE})",
            N_QUERIES,
            f"{batched_qps:,.0f} q/s",
            f"{speedup:.2f}x",
        ],
    ]
    table = ascii_table(["path", "queries/pass", "throughput", "speedup"], rows)
    text = (
        f"serving throughput: N={N_REFERENCE:,} knn(k={K_NEIGHBOURS}) "
        f"reference graph, method=nw\n{table}\n"
        f"acceptance: batched >= {REQUIRED_SPEEDUP:g}x single-query"
    )
    publish(results_dir, "serving_throughput", text, record=batched_record)
    single_record.write_json(results_dir / "serving_single_query.json")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"batched serving is only {speedup:.2f}x the single-query path "
        f"(gate: {REQUIRED_SPEEDUP:g}x)"
    )


#: Telemetry may cost at most this fraction of batched throughput.
MAX_TELEMETRY_OVERHEAD = 0.05


def test_bench_serving_telemetry_overhead(bench, results_dir):
    """PR 8's hot-path budget: full request telemetry (latency/queue-wait
    histograms, phase timings, drift watchdog) must stay under
    ``MAX_TELEMETRY_OVERHEAD`` of batched throughput at N=10^4.

    Two identical workloads, one with ``telemetry="full"`` (the default)
    and one with the opt-out (``telemetry="off"`` server + untelemetered
    model); the gate compares min-of-repeats timings so scheduler noise
    cancels.  Predictions are asserted bitwise identical — telemetry is
    observation, never behavior.
    """
    rng = np.random.default_rng(42)
    data = make_regression_dataset(N_LABELED, N_REFERENCE - N_LABELED, seed=rng)
    queries = truncated_mvn_inputs(N_QUERIES, seed=rng)

    instrumented = GraphSSLModel(graph="knn", graph_params={"k": K_NEIGHBOURS})
    instrumented.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)
    bare = GraphSSLModel(
        graph="knn", graph_params={"k": K_NEIGHBOURS}, telemetry=False
    )
    bare.fit(data.x_labeled, data.y_labeled, data.x_unlabeled)

    def full_pass() -> np.ndarray:
        server = ModelServer(instrumented, max_batch_size=BATCH_SIZE)
        return server.predict_many(queries)

    def off_pass() -> np.ndarray:
        server = ModelServer(bare, max_batch_size=BATCH_SIZE, telemetry="off")
        return server.predict_many(queries)

    off_values, off_record = bench.measure(
        "serving_batched_telemetry_off_n10000", off_pass, repeats=REPEATS
    )
    full_values, full_record = bench.measure(
        "serving_batched_telemetry_full_n10000", full_pass, repeats=REPEATS
    )

    assert np.array_equal(full_values, off_values)

    overhead = full_record.min_s / off_record.min_s - 1.0
    off_qps = N_QUERIES / off_record.min_s
    full_qps = N_QUERIES / full_record.min_s
    rows = [
        ["telemetry off", f"{off_qps:,.0f} q/s", "-"],
        ["telemetry full", f"{full_qps:,.0f} q/s", f"{100 * overhead:+.2f}%"],
    ]
    table = ascii_table(["mode", "throughput", "overhead"], rows)
    text = (
        f"serving telemetry overhead: N={N_REFERENCE:,} "
        f"knn(k={K_NEIGHBOURS}), batch={BATCH_SIZE}, "
        f"{N_QUERIES} queries/pass\n{table}\n"
        f"acceptance: overhead < {100 * MAX_TELEMETRY_OVERHEAD:g}% "
        f"(min over {REPEATS} repeats)"
    )
    publish(results_dir, "serving_telemetry_overhead", text, record=full_record)
    off_record.write_json(results_dir / "serving_batched_telemetry_off.json")

    assert overhead < MAX_TELEMETRY_OVERHEAD, (
        f"full serving telemetry costs {100 * overhead:.2f}% of batched "
        f"throughput (budget: {100 * MAX_TELEMETRY_OVERHEAD:g}%)"
    )
