"""Bench: serving throughput — single-query loop vs micro-batched server.

Fits one knn reference graph at N = 10,000 (the serving scale story:
per-query attachment is a kd-tree lookup, never an O(N^2) rebuild) and
serves the same fresh-query workload two ways:

* ``serving_single_query_n10000`` — a loop of one-point ``predict``
  calls: the per-request cost an unbatched caller pays (validation,
  span, extraction dispatch per query);
* ``serving_batched_n10000`` — the identical workload streamed through
  :class:`~repro.serving.server.ModelServer`, which amortizes all of
  that across ``BATCH_SIZE``-query flushes.

Both timings land in the session :class:`BenchRecorder` (so ``obs
trend`` gates them run-over-run) and in per-bench JSON twins next to the
``.txt`` table.  Acceptance: batched throughput must be at least 5x the
single-query path — batching is the serving layer's whole performance
thesis, so its erosion is a hard failure, not a trend note.

The determinism contract (batched == looped, bitwise) is asserted here
on the real N=10^4 workload too; see tests/test_serving_determinism.py
for the exhaustive small-scale matrix.
"""

from __future__ import annotations

import numpy as np
from conftest import REPEATS, publish

from repro.datasets.synthetic import make_regression_dataset, truncated_mvn_inputs
from repro.experiments.report import ascii_table
from repro.serving import GraphSSLModel, ModelServer

N_REFERENCE = 10_000
N_LABELED = 500
K_NEIGHBOURS = 10
BATCH_SIZE = 256
#: Full workload streamed through the server per timed pass.
N_QUERIES = 2048
#: Queries in the single-call loop per timed pass (kept modest so one
#: pass stays in seconds; qps normalizes the comparison).
N_SINGLE = 128

REQUIRED_SPEEDUP = 5.0


def test_bench_serving_throughput(bench, results_dir):
    rng = np.random.default_rng(42)
    data = make_regression_dataset(N_LABELED, N_REFERENCE - N_LABELED, seed=rng)
    queries = truncated_mvn_inputs(N_QUERIES, seed=rng)

    model = GraphSSLModel(graph="knn", graph_params={"k": K_NEIGHBOURS})
    _, fit_record = bench.measure(
        "serving_fit_n10000", lambda: model.fit(
            data.x_labeled, data.y_labeled, data.x_unlabeled
        ),
        repeats=1,
    )

    single_values, single_record = bench.measure(
        "serving_single_query_n10000",
        lambda: np.asarray(
            [
                model.predict(queries[i : i + 1])[0]
                for i in range(N_SINGLE)
            ]
        ),
        repeats=REPEATS,
    )

    def batched_pass() -> np.ndarray:
        server = ModelServer(model, max_batch_size=BATCH_SIZE)
        return server.predict_many(queries)

    batched_values, batched_record = bench.measure(
        "serving_batched_n10000", batched_pass, repeats=REPEATS
    )

    # Determinism at scale: the batched stream answers the loop's
    # queries with the loop's exact bits.
    assert np.array_equal(batched_values[:N_SINGLE], single_values)

    single_qps = N_SINGLE / single_record.min_s
    batched_qps = N_QUERIES / batched_record.min_s
    speedup = batched_qps / single_qps

    rows = [
        ["fit (once)", "-", f"{fit_record.min_s:.2f}s", "-"],
        ["single predict()", N_SINGLE, f"{single_qps:,.0f} q/s", "1.00x"],
        [
            f"batched (batch={BATCH_SIZE})",
            N_QUERIES,
            f"{batched_qps:,.0f} q/s",
            f"{speedup:.2f}x",
        ],
    ]
    table = ascii_table(["path", "queries/pass", "throughput", "speedup"], rows)
    text = (
        f"serving throughput: N={N_REFERENCE:,} knn(k={K_NEIGHBOURS}) "
        f"reference graph, method=nw\n{table}\n"
        f"acceptance: batched >= {REQUIRED_SPEEDUP:g}x single-query"
    )
    publish(results_dir, "serving_throughput", text, record=batched_record)
    single_record.write_json(results_dir / "serving_single_query.json")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"batched serving is only {speedup:.2f}x the single-query path "
        f"(gate: {REQUIRED_SPEEDUP:g}x)"
    )
