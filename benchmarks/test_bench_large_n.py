"""Bench: the N=10⁵ pipeline — approximate kNN build + multigrid λ-sweep.

The scaling wall this PR removes is twofold.  First, graph construction:
the dense O(N²) route is out of reach long before 10⁵ and even exact
kd-tree queries degrade with dimension; the RP-tree route
(:mod:`repro.graph.approx`) is measured against the exact build with its
recall printed.  Second, the sweep: in d=3 the ``splu`` fill-in of one
soft-system factorization crosses ~80 s at N=10⁵, so both the ``exact``
backend (one factorization per grid point) and the ``factored`` backend
(one anchor factorization + warm-started PCG) pay it, while the
``multigrid`` backend builds a λ-independent coarsening hierarchy in
~1 s and solves each grid point in a handful of V-cycle-preconditioned
CG iterations.

Scales: ``quick`` (default) runs N=2·10⁴ including the per-point exact
sweep; ``REPRO_BENCH_SCALE=paper`` runs N=10⁵ and drops the exact sweep
(20 × ~80 s factorizations).  The d=3 data is deliberate: in d=2 sparse
factorization fill-in stays nearly linear and the comparison would
flatter nobody — see docs/SCALING.md.

Acceptance guards: the multigrid sweep beats the factored sweep ≥ 3x,
its endpoint scores match the factored sweep, approximate-kNN recall at
the default knob is ≥ 0.95, and soft-criterion scores on the
approximate graph match the exact graph within 1e-2 RMS over vertices
(the max-norm is reported alongside: it is dominated by the single
worst vertex that lost its one longest edge, and stays a few times
larger even at recall > 0.9999).  The knob loop at the bottom produces
the recall/accuracy trade-off table quoted in docs/SCALING.md.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import REPEATS, SCALE, publish

from repro.experiments.report import ascii_table
from repro.graph.approx import (
    DEFAULT_N_TREES,
    approx_knn_graph,
    knn_recall,
    rp_tree_knn,
)
from repro.graph.similarity import knn_graph
from repro.linalg.workspace import SolveWorkspace
from repro.obs.bench import MemoryBudget

N = 100_000 if SCALE == "paper" else 20_000
D = 3
K = 10
GRID = tuple(float(lam) for lam in np.logspace(-3, 2, 20))

#: Acceptance floor: the coarsening-preconditioned sweep vs the
#: factored (anchored-splu + warm-started PCG) sweep.
MIN_MULTIGRID_SPEEDUP = 3.0

#: Acceptance floors for the approximate construction.
MIN_APPROX_RECALL = 0.95
MAX_APPROX_SCORE_ERROR = 1e-2

# ----------------------------------------------------------------------
# Memory-budget bench (the out-of-core pipeline's acceptance gate)
# ----------------------------------------------------------------------

#: The budgeted pipeline: N = 10⁶ at paper scale, a CI-sized 2·10⁵
#: otherwise (large enough that auto-streaming and the auto matrix-free
#: hierarchy both engage — see ``STREAM_AUTO_CANDIDATES`` and
#: ``MATRIX_FREE_MIN_VERTICES``).
N_BUDGET = 1_000_000 if SCALE == "paper" else 200_000

#: Reduced λ grid for the budgeted sweep (memory is λ-count-independent;
#: runtime at N=10⁶ is not).
BUDGET_GRID = tuple(float(lam) for lam in np.logspace(-2, 1, 4))

#: Every phase of the memory-lean pipeline must peak below this fraction
#: of the naive pipeline's peak.  The naive peak is dominated by the
#: one-shot candidate merge: ``n_trees · N · k`` (row, col, sq) triples
#: of 24 bytes concatenated and then copied once more by the
#: dedup/lexsort reduction.
BUDGET_FRACTION = 0.40

#: The matrix-free hierarchy must *retain* at most this fraction of what
#: the assembled float64 hierarchy would store (O(N) maps vs O(Σ nnz)).
HIERARCHY_RETAINED_FRACTION = 0.40

#: Float32 smoothing changes the preconditioner, not the answer: the
#: outer CG still converges in float64 to ``pcg_tol``, so converged
#: scores agree with the float64 policy to well below this RMS tier
#: (observed ~1e-15 at N=2·10⁵; documented in docs/SCALING.md).
FLOAT32_MAX_RMS = 1e-9


def _naive_candidate_bytes(n: int) -> int:
    return DEFAULT_N_TREES * n * K * 24 * 2


def test_bench_memory_budget(bench, results_dir):
    n = N_BUDGET
    x, y = _make_problem(n)
    budget_bytes = int(BUDGET_FRACTION * _naive_candidate_bytes(n))
    gate = MemoryBudget()

    # Budget phases and BenchRecorder timing passes both reset the shared
    # tracemalloc peak, so the phases run once (gated) and the record is
    # built from the phase durations (repeats=1, informational only).
    with gate.phase("graph", budget_bytes=budget_bytes):
        graph = approx_knn_graph(x, k=K, bandwidth=0.5)
    workspace = SolveWorkspace(
        graph.weights,
        backend="multigrid",
        hierarchy_mode="matrix_free",
        dtype_policy="float32",
    )
    with gate.phase("hierarchy", budget_bytes=budget_bytes):
        hierarchy = workspace.hierarchy()
    with gate.phase("sweep", budget_bytes=budget_bytes):
        fits = workspace.sweep_soft(y, BUDGET_GRID)

    retained = hierarchy.retained_bytes()
    assembled_est = hierarchy.assembled_bytes_estimate()
    stats = workspace.stats()

    from repro.obs.bench import BenchRecord

    record = BenchRecord.from_samples(
        f"memory_budget_pipeline_n{n}",
        [usage.duration_s for usage in gate.phases],
        repeats=1,
        memory={
            "budget": gate.to_dict(),
            "naive_candidate_bytes": _naive_candidate_bytes(n),
            "hierarchy_retained_bytes": retained,
            "hierarchy_assembled_estimate_bytes": assembled_est,
            "peak_bytes": max(u.peak_traced_bytes for u in gate.phases),
        },
        scale=SCALE,
    )
    bench.add(record)
    record.write_json(results_dir / f"{record.name}.json")

    lines = [
        f"memory-budget pipeline at N={n}, d={D}, k={K} "
        f"({len(BUDGET_GRID)}-point lambda grid, "
        f"hierarchy_mode={stats.hierarchy_mode}, "
        f"dtype_policy={stats.dtype_policy})",
        f"per-phase budget: {budget_bytes / 2**20:.0f} MiB "
        f"(= {BUDGET_FRACTION:.0%} of the naive one-shot candidate peak "
        f"{_naive_candidate_bytes(n) / 2**20:.0f} MiB)",
        gate.report(),
        f"hierarchy retains {retained / 2**20:.1f} MiB vs "
        f"{assembled_est / 2**20:.1f} MiB assembled "
        f"({retained / assembled_est:.1%}; acceptance <= "
        f"{HIERARCHY_RETAINED_FRACTION:.0%})",
    ]
    publish(results_dir, f"memory_budget_pipeline_n{n}", "\n".join(lines))

    # ------------------------------------------------------------------
    # Acceptance guards
    # ------------------------------------------------------------------
    assert gate.ok, gate.report()
    assert stats.hierarchy_mode == "matrix_free"  # auto threshold engaged
    assert retained <= HIERARCHY_RETAINED_FRACTION * assembled_est, (
        retained,
        assembled_est,
    )

    # Parity: the budgeted path must reproduce the assembled float64
    # sweep.  Affordable at CI scale only — at N=10⁶ the assembled
    # reference is exactly the memory burner this bench retires (the
    # parity suite pins the same guarantee at test scale).
    if SCALE != "paper":
        reference = SolveWorkspace(
            graph.weights, backend="multigrid", hierarchy_mode="assembled"
        ).sweep_soft(y, BUDGET_GRID)
        for fit, ref in zip(fits, reference):
            rms = float(np.sqrt(np.mean((fit.scores - ref.scores) ** 2)))
            assert rms < FLOAT32_MAX_RMS, (fit.lam, rms)
            np.testing.assert_allclose(
                fit.scores, ref.scores, atol=1e-6, rtol=0
            )


def _make_problem(n: int):
    rng = np.random.default_rng(n)
    x = rng.normal(size=(n, D))
    n_labeled = n // 20
    y = np.sin(x[:n_labeled, 0]) + 0.1 * rng.normal(size=n_labeled)
    return x, y


def _sweep(weights, y, backend):
    workspace = SolveWorkspace(weights, backend=backend)
    fits = workspace.sweep_soft(y, GRID)
    return [fit.scores for fit in fits], workspace.stats()


def test_bench_large_n(bench, results_dir):
    x, y = _make_problem(N)

    # ------------------------------------------------------------------
    # Graph construction: exact kd-tree vs RP-tree approximate
    # ------------------------------------------------------------------
    exact_graph, rec_knn = bench.measure(
        f"large_n_knn_exact_n{N}",
        lambda: knn_graph(x, k=K, bandwidth=0.5, construction="neighbors"),
        repeats=REPEATS,
    )
    approx_graph, rec_approx = bench.measure(
        f"large_n_knn_approx_n{N}",
        lambda: knn_graph(x, k=K, bandwidth=0.5, construction="approx"),
        repeats=REPEATS,
    )
    _, approx_idx = rp_tree_knn(x, K)
    recall = knn_recall(x, K, approx_idx)

    # ------------------------------------------------------------------
    # λ-sweeps over the exact graph
    # ------------------------------------------------------------------
    weights = exact_graph.weights
    factored, rec_factored = bench.measure(
        f"large_n_sweep_factored_n{N}",
        lambda: _sweep(weights, y, "factored"),
        repeats=1,
        profile=False,
    )
    multigrid, rec_multigrid = bench.measure(
        f"large_n_sweep_multigrid_n{N}",
        lambda: _sweep(weights, y, "multigrid"),
        repeats=1,
        profile=False,
    )
    rows = [
        ["knn exact", f"{rec_knn.min_s * 1e3:.0f}", "-", "-"],
        ["knn approx", f"{rec_approx.min_s * 1e3:.0f}", "-",
         f"recall {recall:.4f}"],
        ["sweep factored", f"{rec_factored.min_s * 1e3:.0f}",
         f"{len(GRID)}", f"reanchors {factored[1].reanchors}"],
        ["sweep multigrid", f"{rec_multigrid.min_s * 1e3:.0f}",
         f"{len(GRID)}",
         f"{multigrid[1].pcg_iterations} PCG iters, "
         f"{multigrid[1].coarsen_builds} hierarchy build"],
    ]
    if SCALE != "paper":
        # 20 per-point factorizations are feasible at quick scale only
        # (at N=1e5, d=3 each splu costs ~80 s).
        exact, rec_exact = bench.measure(
            f"large_n_sweep_exact_n{N}",
            lambda: _sweep(weights, y, "exact"),
            repeats=1,
            profile=False,
        )
        rows.append(
            ["sweep exact", f"{rec_exact.min_s * 1e3:.0f}",
             f"{len(GRID)}", f"{exact[1].factor_misses} factorizations"]
        )
        rec_exact.write_json(results_dir / f"{rec_exact.name}.json")

    for rec in (rec_knn, rec_approx, rec_factored, rec_multigrid):
        rec.write_json(results_dir / f"{rec.name}.json")

    speedup = rec_factored.min_s / rec_multigrid.min_s
    table = ascii_table(["leg", "time (ms)", "grid", "notes"], rows)
    summary = (
        f"large-N pipeline at N={N}, d={D}, k={K} "
        f"(20-point log lambda grid)\n{table}\n"
        f"multigrid speedup over factored: {speedup:.2f}x "
        f"(acceptance >= {MIN_MULTIGRID_SPEEDUP:.0f}x); "
        f"approx recall {recall:.4f} "
        f"(acceptance >= {MIN_APPROX_RECALL})"
    )
    publish(results_dir, f"large_n_pipeline_n{N}", summary)

    # ------------------------------------------------------------------
    # Acceptance guards
    # ------------------------------------------------------------------
    assert recall >= MIN_APPROX_RECALL
    assert speedup >= MIN_MULTIGRID_SPEEDUP

    # The two sweeps must agree at both ends of the grid.
    factored_scores, _ = factored
    multigrid_scores, _ = multigrid
    np.testing.assert_allclose(
        multigrid_scores[0], factored_scores[0], atol=1e-6, rtol=0
    )
    np.testing.assert_allclose(
        multigrid_scores[-1], factored_scores[-1], atol=1e-6, rtol=0
    )

    # ------------------------------------------------------------------
    # Recall/accuracy trade-off: sweep the knob, solve one mid-grid λ on
    # each approximate graph, compare to the exact graph's scores.  This
    # table is the source for docs/SCALING.md.
    # ------------------------------------------------------------------
    mid = GRID[len(GRID) // 2]
    reference = SolveWorkspace(weights, backend="multigrid").solve_soft(
        y, mid
    ).scores
    trade_rows = []
    default_errors = None
    for n_trees in (2, 4, DEFAULT_N_TREES, 2 * DEFAULT_N_TREES):
        start = time.perf_counter()
        _, idx = rp_tree_knn(x, K, n_trees=n_trees)
        build_s = time.perf_counter() - start
        knob_graph = approx_knn_graph(
            x, k=K, bandwidth=0.5, n_trees=n_trees
        )
        scores = SolveWorkspace(
            knob_graph.weights, backend="multigrid"
        ).solve_soft(y, mid).scores
        errors = np.abs(scores - reference)
        rms = float(np.sqrt(np.mean(errors**2)))
        knob_recall = knn_recall(x, K, idx)
        if n_trees == DEFAULT_N_TREES:
            default_errors = (knob_recall, rms)
        trade_rows.append(
            [
                n_trees,
                f"{build_s * 1e3:.0f}",
                f"{knob_recall:.4f}",
                f"{rms:.2e}",
                f"{float(errors.max()):.2e}",
            ]
        )
    trade_table = ascii_table(
        ["n_trees", "build (ms)", "recall@10", "rms err", "max err"],
        trade_rows,
    )
    publish(
        results_dir,
        f"large_n_approx_tradeoff_n{N}",
        f"approximate-kNN recall/accuracy trade-off at N={N}, d={D} "
        f"(soft scores at lambda={mid:.3g} vs the exact graph)\n"
        f"{trade_table}\n"
        f"acceptance at the default knob (n_trees={DEFAULT_N_TREES}): "
        f"recall >= {MIN_APPROX_RECALL}, "
        f"rms err < {MAX_APPROX_SCORE_ERROR}",
    )
    assert default_errors is not None
    assert default_errors[0] >= MIN_APPROX_RECALL
    assert default_errors[1] < MAX_APPROX_SCORE_ERROR, default_errors
