"""Bench: multiclass extension of the COIL experiment.

The paper binarizes COIL's six classes; here the full 6-class task runs
through the multiclass harmonic solution with class mass normalization,
scored by macro one-vs-rest AUC and accuracy at the paper's three
labeled ratios.  Criteria: performance is well above chance and
degrades as the labeled fraction shrinks — the multiclass analogue of
Figure 5's labeled-ratio ordering.
"""

import numpy as np
from conftest import publish, replicates

from repro.core.multiclass import solve_multiclass_hard
from repro.datasets.coil import make_coil_like
from repro.datasets.splits import paper_coil_protocol
from repro.experiments.report import ascii_table
from repro.kernels.bandwidth import median_heuristic
from repro.kernels.library import GaussianKernel
from repro.metrics.probabilistic import macro_ovr_auc


def test_bench_multiclass_coil(bench, results_dir):
    repeats = replicates(2, 20)

    def run():
        dataset = make_coil_like(
            images_per_class=100, ring_amplitude=0.15, seed=11
        )
        # A local bandwidth: multiclass argmax needs contrastive columns.
        sigma = 0.25 * median_heuristic(dataset.images, subsample=400, seed=0)
        weights = GaussianKernel().gram(dataset.images, bandwidth=sigma)
        labels = dataset.class_labels.astype(float)
        rows = []
        for setting in ("80/20", "20/80", "10/90"):
            aucs, accs = [], []
            for labeled_idx, unlabeled_idx in paper_coil_protocol(
                dataset.n_samples, setting, repeats=repeats, seed=3
            ):
                order = np.concatenate([labeled_idx, unlabeled_idx])
                w_perm = weights[np.ix_(order, order)]
                fit = solve_multiclass_hard(
                    w_perm, labels[labeled_idx], check_reachability=False
                )
                hidden = labels[unlabeled_idx]
                aucs.append(macro_ovr_auc(hidden, fit.scores, classes=fit.classes))
                accs.append(float(np.mean(fit.predict() == hidden)))
            rows.append([setting, float(np.mean(aucs)), float(np.mean(accs))])
        return rows

    rows, record = bench.measure("multiclass_coil", run, repeats=1)
    table = ascii_table(["labeled ratio", "macro AUC", "accuracy"], rows)
    publish(
        results_dir,
        "multiclass_coil",
        "Multiclass (6-way) COIL-like task, hard criterion + CMN\n" + table,
        record=record,
    )
    data = np.asarray([row[1:] for row in rows], dtype=np.float64)
    # Well above chance: AUC >> 0.5, accuracy >> 1/6.
    assert np.all(data[:, 0] > 0.7)
    assert np.all(data[:, 1] > 0.35)
    # Labeled-ratio ordering (Figure 5's multiclass analogue).
    assert data[0, 0] > data[2, 0]
    assert data[0, 1] > data[2, 1]
