"""Bench: active learning with harmonic functions (extension study).

Criteria: on the two-moons pool, every informed query strategy
(margin / variance / expected-risk) is at least as label-efficient as
random sampling, measured by the area under the accuracy-vs-labels
curve averaged over repeated runs.
"""

import numpy as np
from conftest import publish, replicates

from repro.active import run_active_learning
from repro.datasets.toy import two_moons
from repro.experiments.report import ascii_table
from repro.graph.similarity import full_kernel_graph
from repro.utils.rng import spawn_rngs


def test_bench_active_learning(bench, results_dir):
    n_runs = replicates(5, 30)

    def run():
        curves = {name: [] for name in ("random", "margin", "variance", "expected_risk")}
        finals = {name: [] for name in curves}
        for rng in spawn_rngs(0, n_runs):
            x, y = two_moons(150, noise=0.08, seed=rng)
            weights = full_kernel_graph(x, bandwidth=0.3).dense_weights()
            seeds = np.concatenate(
                [np.flatnonzero(y == 0.0)[:2], np.flatnonzero(y == 1.0)[:2]]
            )
            for name in curves:
                history = run_active_learning(
                    weights, y, seed_indices=seeds, budget=10,
                    strategy=name, rng_seed=rng,
                )
                curves[name].append(history.area_under_curve())
                finals[name].append(history.final_accuracy)
        return (
            {name: float(np.mean(v)) for name, v in curves.items()},
            {name: float(np.mean(v)) for name, v in finals.items()},
        )

    (mean_alc, mean_final), record = bench.measure("active_learning", run, repeats=1)
    rows = [
        [name, mean_alc[name], mean_final[name]]
        for name in ("random", "margin", "variance", "expected_risk")
    ]
    table = ascii_table(["strategy", "mean ALC", "final accuracy"], rows)
    publish(
        results_dir,
        "active_learning",
        "Active learning on two moons (10 queries from 4 seeds)\n" + table,
        record=record,
    )
    assert mean_alc["variance"] >= mean_alc["random"] - 0.01
    assert mean_alc["expected_risk"] >= mean_alc["random"] - 0.01
