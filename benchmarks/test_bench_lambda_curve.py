"""Bench: the full lambda-degradation curve.

Criteria (the continuity argument under Proposition II.2): the curve
starts exactly at the hard criterion's RMSE, increases with lambda
overall, and converges to the constant-mean anchor — no sweet spot at
any interior lambda.
"""

import numpy as np
from conftest import publish, replicates

from repro.experiments.lambda_curve import run_lambda_curve
from repro.experiments.report import ascii_table


def test_bench_lambda_curve(bench, results_dir):
    curve, record = bench.measure(
        "lambda_curve",
        lambda: run_lambda_curve(n_replicates=replicates(30, 300), seed=0),
        repeats=1,
    )
    rows = [[f"{lam:g}", value] for lam, value in zip(curve.lambdas, curve.rmse)]
    summary = (
        "Lambda-degradation curve (mean RMSE)\n"
        + ascii_table(curve.headers(), rows)
        + f"\nanchors: hard = {curve.hard_rmse:.4f}, "
        + f"constant mean = {curve.mean_rmse:.4f}"
    )
    publish(results_dir, "lambda_curve", summary, record=record)

    assert curve.interpolates_anchors
    rmse = np.asarray(curve.rmse)
    # No interior lambda beats the hard criterion.
    assert rmse.min() >= curve.hard_rmse - 1e-12
    # The curve trends upward: every point at lambda >= 0.1 exceeds
    # every point at lambda <= 0.01.
    grid = np.asarray(curve.lambdas)
    low = rmse[grid <= 0.01]
    high = rmse[grid >= 0.1]
    assert low.max() < high.min()
