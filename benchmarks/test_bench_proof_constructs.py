"""Bench: Section IV's proof constructs along a growing-n schedule.

Criteria: each proof-tracked quantity — the tiny-element max, the
hard-vs-Nadaraya-Watson gap, and the g correction — shrinks from the
smallest to the largest n, and the Neumann series converges (spectral
radius < 1) at every n.  A second table verifies the proof's first
probabilistic step: the Chebyshev concentration of the ball-hit ratio
``Phi_n(a)``, with the empirical exceedance below the proof's bound at
every n.
"""

from conftest import REPEATS, SCALE, publish, replicates

from repro.experiments.report import ascii_table
from repro.validation.proof_constructs import (
    run_phi_concentration,
    run_proof_construct_sweep,
)


def test_bench_phi_concentration(bench, results_dir):
    result, record = bench.measure(
        "phi_concentration",
        lambda: run_phi_concentration(
            n_values=(100, 400, 1600),
            n_replicates=replicates(200, 2000),
            seed=0,
        ),
        repeats=1,
    )
    rows = [
        [n, emp, bound]
        for n, emp, bound in zip(
            result.n_values, result.exceedance, result.chebyshev_bound
        )
    ]
    table = ascii_table(
        ["n", "P(|Phi-1| >= eps)", "Chebyshev bound"], rows
    )
    publish(
        results_dir,
        "phi_concentration",
        f"Phi_n concentration (uniform inputs, eps={result.epsilon})\n" + table,
        record=record,
    )
    assert result.bound_holds
    assert result.concentrates
    assert result.exceedance[-1] < 0.05


def test_bench_proof_constructs(bench, results_dir):
    n_values = (50, 100, 200, 400, 800, 1600) if SCALE == "paper" else (50, 100, 200, 400, 800)
    snaps, record = bench.measure(
        "proof_constructs",
        lambda: run_proof_construct_sweep(n_values=n_values, n_unlabeled=20, seed=0),
        repeats=REPEATS,
    )
    rows = [
        [s.n, s.tiny_elements_max, s.spectral_radius, s.g_max, s.hard_nw_gap]
        for s in snaps
    ]
    table = ascii_table(
        ["n", "||D22^-1 W22||_max", "spec radius", "max |g|", "max |f - NW|"], rows
    )
    publish(
        results_dir,
        "proof_constructs",
        "Section IV proof constructs\n" + table,
        record=record,
    )

    assert all(s.spectral_radius < 1.0 for s in snaps)
    assert snaps[-1].tiny_elements_max < snaps[0].tiny_elements_max
    assert snaps[-1].g_max < snaps[0].g_max
    assert snaps[-1].hard_nw_gap < snaps[0].hard_nw_gap
