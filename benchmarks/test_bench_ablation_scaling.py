"""Benches: anchor-budget scaling and Laplacian-penalty variants.

* anchor ablation — accuracy/speed trade-off of the Delalleau-style
  anchor subset (the paper's reference [10]) against the exact solve;
* penalty ablation — the paper's unnormalized Laplacian penalty vs the
  symmetric-normalized variant on the same workload.
"""

import time

import numpy as np
from conftest import publish, replicates

from repro.core.anchors import solve_anchored
from repro.core.hard import solve_hard_criterion
from repro.core.soft import solve_soft_criterion
from repro.core.variants import solve_soft_criterion_normalized
from repro.datasets.synthetic import make_synthetic_dataset
from repro.experiments.report import ascii_table
from repro.experiments.runner import run_replicates
from repro.graph.similarity import full_kernel_graph
from repro.kernels.bandwidth import paper_bandwidth_rule
from repro.metrics.regression import root_mean_squared_error


def test_bench_ablation_anchors(bench, results_dir):
    n_labeled, n_unlabeled = 100, 800
    budgets = (25, 50, 100, 200, 400, 800)

    def run():
        data = make_synthetic_dataset(n_labeled, n_unlabeled, seed=0)
        bandwidth = paper_bandwidth_rule(n_labeled, 5)
        graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
        start = time.perf_counter()
        exact = solve_hard_criterion(
            graph.weights, data.y_labeled, check_reachability=False
        )
        exact_seconds = time.perf_counter() - start
        exact_rmse = root_mean_squared_error(
            data.q_unlabeled, exact.unlabeled_scores
        )
        rows = []
        for budget in budgets:
            start = time.perf_counter()
            fit = solve_anchored(
                data.x_labeled, data.y_labeled, data.x_unlabeled,
                n_anchors=budget, bandwidth=bandwidth, seed=1,
            )
            seconds = time.perf_counter() - start
            rows.append(
                [
                    budget,
                    root_mean_squared_error(data.q_unlabeled, fit.unlabeled_scores),
                    float(np.max(np.abs(fit.unlabeled_scores - exact.unlabeled_scores))),
                    seconds,
                ]
            )
        return rows, exact_rmse, exact_seconds

    (rows, exact_rmse, exact_seconds), record = bench.measure(
        "ablation_anchors", run, repeats=1
    )
    table = ascii_table(["anchors", "rmse", "max|f-exact|", "seconds"], rows)
    publish(
        results_dir,
        "ablation_anchors",
        f"Anchor-budget ablation (m={800}; exact rmse {exact_rmse:.4f}, "
        f"exact solve {exact_seconds:.3f}s)\n" + table,
        record=record,
    )
    data = np.asarray(rows, dtype=np.float64)
    # Full budget reproduces the exact solution.
    assert data[-1, 2] < 1e-8
    # Agreement improves with budget (first vs last).
    assert data[-1, 2] < data[0, 2]
    # RMSE at the smallest budget is still in the exact solve's ballpark.
    assert data[0, 1] < 2.0 * exact_rmse


def test_bench_ablation_penalty(bench, results_dir):
    reps = replicates(20, 200)

    def run():
        def replicate(rng):
            data = make_synthetic_dataset(150, 30, seed=rng)
            bandwidth = paper_bandwidth_rule(150, 5)
            graph = full_kernel_graph(data.x_all, bandwidth=bandwidth)
            out = {}
            for lam in (0.01, 0.1):
                plain = solve_soft_criterion(
                    graph.weights, data.y_labeled, lam, check_reachability=False
                )
                norm = solve_soft_criterion_normalized(
                    graph.weights, data.y_labeled, lam, check_reachability=False
                )
                out[f"unnormalized@{lam:g}"] = root_mean_squared_error(
                    data.q_unlabeled, plain.unlabeled_scores
                )
                out[f"normalized@{lam:g}"] = root_mean_squared_error(
                    data.q_unlabeled, norm.unlabeled_scores
                )
            hard = solve_hard_criterion(
                graph.weights, data.y_labeled, check_reachability=False
            )
            out["hard"] = root_mean_squared_error(
                data.q_unlabeled, hard.unlabeled_scores
            )
            return out

        return run_replicates(replicate, n_replicates=reps, seed=0)

    summary, record = bench.measure("ablation_penalty", run, repeats=1)
    keys = ["hard", "unnormalized@0.01", "normalized@0.01", "unnormalized@0.1", "normalized@0.1"]
    rows = [[key, summary.means[key]] for key in keys]
    publish(
        results_dir,
        "ablation_penalty",
        "Laplacian-penalty ablation (mean RMSE)\n"
        + ascii_table(["variant", "rmse"], rows),
        record=record,
    )
    # The hard criterion beats both soft variants (the paper's theme).
    assert summary.means["hard"] <= min(
        summary.means[k] for k in keys[1:]
    ) + 0.005
