"""Bench: Proposition II.1 — the soft solution converges to the hard
solution as lambda -> 0, monotonically."""

from conftest import REPEATS, publish

from repro.experiments.figures import run_prop21_experiment
from repro.experiments.report import ascii_table


def test_bench_prop21(bench, results_dir):
    result, record = bench.measure(
        "prop21",
        lambda: run_prop21_experiment(n_labeled=300, n_unlabeled=60, seed=0),
        repeats=REPEATS,
    )
    rows = [[f"{lam:.0e}", dev] for lam, dev in zip(result.lambdas, result.deviations)]
    table = ascii_table(result.headers(), rows)
    publish(
        results_dir,
        "prop21",
        "Proposition II.1 (lambda -> 0 limit)\n" + table,
        record=record,
    )
    assert result.converges
    assert result.deviations[-1] < 1e-8
