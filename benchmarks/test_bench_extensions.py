"""Benches: the paper's future-work studies (Section VI).

* metric study — does the RMSE ordering (hard best) transfer to AUC,
  MCC and accuracy?
* m-growth study — is the hard criterion still ahead when m grows
  faster than n (the regime outside Theorem II.1)?
* tuned-lambda study — does cross-validating lambda close the gap to
  the untuned hard criterion?  (The paper's practical message: no.)
"""

from conftest import publish, replicates

from repro.experiments.extensions import (
    run_m_growth_study,
    run_metric_study,
    run_tuned_lambda_study,
)
from repro.experiments.report import ascii_table, format_sweep_result


def test_bench_metric_study(bench, results_dir):
    result, record = bench.measure(
        "metric_study",
        lambda: run_metric_study(
            n_labeled=200, n_unlabeled=100,
            n_replicates=replicates(30, 300), seed=0,
        ),
        repeats=1,
    )
    publish(results_dir, "metric_study", format_sweep_result(result), record=record)
    # Threshold metrics (MCC, accuracy) must favor the hard criterion.
    for metric in ("mcc", "accuracy"):
        series = result.series(metric)
        assert series[0] >= series[-1]  # lambda=0 beats lambda=5
    # AUC changes little in lambda (ranking is more robust than
    # calibration) but must not *improve* materially with lambda.
    auc_series = result.series("auc")
    assert auc_series[0] >= auc_series[-1] - 0.02


def test_bench_m_growth(bench, results_dir):
    def run():
        return {
            gamma: run_m_growth_study(
                gamma=gamma,
                coefficient=0.5,
                n_values=(50, 100, 200, 400),
                n_replicates=replicates(15, 200),
                seed=1,
            )
            for gamma in (0.5, 1.0, 1.5)
        }

    results, record = bench.measure("m_growth", run, repeats=1)
    blocks = []
    for gamma, result in results.items():
        table = ascii_table(result.headers(), result.to_rows())
        blocks.append(f"gamma = {gamma} (m ~ n^{gamma})\n{table}")
        # The paper's observation holds in every regime: hard ahead.
        assert result.hard_always_ahead()
    publish(
        results_dir,
        "m_growth",
        "m-growth study\n\n" + "\n\n".join(blocks),
        record=record,
    )

    # Sublinear growth (inside the theorem) must show decreasing RMSE.
    sub = results[0.5]
    assert sub.hard_rmse[-1] < sub.hard_rmse[0]
    # Superlinear growth drives the theorem ratio up.
    sup = results[1.5]
    assert sup.growth_ratio[-1] > sup.growth_ratio[0]


def test_bench_tuned_lambda(bench, results_dir):
    result, record = bench.measure(
        "tuned_lambda",
        lambda: run_tuned_lambda_study(
            n_labeled=150, n_unlabeled=30,
            n_replicates=replicates(10, 100), seed=2,
        ),
        repeats=1,
    )
    table = ascii_table(
        ["method", "mean RMSE"],
        [
            ["hard (lambda = 0, untuned)", result.hard_rmse],
            ["soft (lambda by 5-fold CV)", result.tuned_rmse],
        ],
    )
    summary = (
        "Untuned hard criterion vs CV-tuned soft criterion\n"
        f"{table}\n"
        f"CV chose lambda = 0 in {100 * result.fraction_choosing_zero():.0f}% "
        f"of replicates"
    )
    publish(results_dir, "tuned_lambda", summary, record=record)
    assert result.hard_rmse <= result.tuned_rmse + 0.005
