"""Bench: Theorem II.1's consistency, traced empirically.

Criteria: the hard criterion's RMSE against the true regression function
falls as n grows, the exceedance probability
P(max |f - q| > eps) falls, and the hard criterion shadows the
Nadaraya-Watson estimator (the proof's mechanism).
"""

from conftest import publish, replicates

from repro.experiments.report import ascii_table
from repro.validation.consistency import run_consistency_curve


def test_bench_consistency_curve(bench, results_dir):
    curve, record = bench.measure(
        "consistency_curve",
        lambda: run_consistency_curve(
            n_values=(25, 50, 100, 200, 400, 800),
            n_unlabeled=20,
            n_replicates=replicates(40, 500),
            seed=0,
        ),
        repeats=1,
    )
    table = ascii_table(curve.headers(), curve.to_rows())
    publish(
        results_dir,
        "consistency_curve",
        f"Theorem II.1 empirical consistency (eps={curve.epsilon})\n" + table,
        record=record,
    )
    assert curve.rmse_decreases
    assert curve.exceedance[-1] <= curve.exceedance[0]
    # Hard tracks NW at the largest n (within 20% relative).
    assert abs(curve.hard_rmse[-1] - curve.nw_rmse[-1]) < 0.2 * curve.nw_rmse[-1]
