"""Bench: regenerate Figure 2 (RMSE vs m, Model 1, n = 100).

Reproduction criteria: hard criterion best at every m; RMSE ordered by
lambda; every series trends *upward* in m (the regime where the
theorem's m = o(n h^d) condition fails).
"""

from conftest import publish, replicates

from repro.experiments.figures import run_figure2
from repro.experiments.report import format_sweep_result, write_csv


def test_bench_figure2(bench, results_dir):
    result, record = bench.measure(
        "figure2",
        lambda: run_figure2(n_replicates=replicates(25, 1000), seed=2),
        repeats=1,
    )
    publish(results_dir, "figure2", format_sweep_result(result), record=record)
    write_csv(results_dir / "figure2.csv", result.headers(), result.to_rows())

    slack = 0.01
    assert result.series_dominates("lambda=0", "lambda=0.01", slack=slack)
    assert result.series_dominates("lambda=0.01", "lambda=0.1", slack=slack)
    assert result.series_dominates("lambda=0.1", "lambda=5", slack=slack)
    # RMSE grows with m; the lambda=5 series sits near its collapse
    # plateau and is only required not to fall (nearly flat in the paper).
    for label in ("lambda=0", "lambda=0.01", "lambda=0.1"):
        assert result.series_trend(label) > 0
    assert result.series_trend("lambda=5") > -1e-5
