"""Bench: regenerate Figure 3 (RMSE vs n, Model 2 non-linear logit, m = 30).

Same criteria as Figure 1, under the interaction-term logit.
"""

from conftest import publish, replicates

from repro.experiments.figures import run_figure3
from repro.experiments.report import format_sweep_result, write_csv


def test_bench_figure3(bench, results_dir):
    result, record = bench.measure(
        "figure3",
        lambda: run_figure3(n_replicates=replicates(25, 1000), seed=3),
        repeats=1,
    )
    publish(results_dir, "figure3", format_sweep_result(result), record=record)
    write_csv(results_dir / "figure3.csv", result.headers(), result.to_rows())

    slack = 0.01
    assert result.series_dominates("lambda=0", "lambda=0.01", slack=slack)
    assert result.series_dominates("lambda=0.01", "lambda=0.1", slack=slack)
    assert result.series_dominates("lambda=0.1", "lambda=5", slack=slack)
    for label in result.series_labels:
        assert result.series_trend(label) < 0
