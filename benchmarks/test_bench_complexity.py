"""Bench: Section II's complexity claim — hard O(m^3) vs soft-full O((n+m)^3).

Criteria: the soft full-system solve is slower than the hard solve at
every size, and the speedup does not shrink as problems grow (the
asymptotic gap is the (n+m)^3 / m^3 ratio).
"""

from conftest import SCALE, publish

from repro.experiments.figures import run_complexity_experiment
from repro.experiments.report import ascii_table


def test_bench_complexity(bench, results_dir):
    sizes = (200, 400, 800, 1600) if SCALE == "paper" else (150, 300, 600)
    result, record = bench.measure(
        "complexity",
        lambda: run_complexity_experiment(total_sizes=sizes, repeats=3, seed=0),
        repeats=1,
    )
    table = ascii_table(result.headers(), result.to_rows())
    summary = (
        "Section II complexity claim (hard m^3 vs soft-full (n+m)^3)\n"
        f"{table}\n"
        f"fitted exponents: hard={result.hard_exponent:.2f}, "
        f"soft_full={result.soft_exponent:.2f}"
    )
    publish(results_dir, "complexity", summary, record=record)

    speedups = result.speedups()
    assert all(s > 1.0 for s in speedups)  # hard always cheaper
    assert speedups[-1] >= 0.8 * speedups[0]  # gap persists at scale
